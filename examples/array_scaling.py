#!/usr/bin/env python
"""Array scaling: shard a chip, survive a shard, keep serving.

Splits the same total PCM capacity across 1-8 shard devices behind the
interleaved decoder and runs each array to its end of life, then replays
the nastiest case — a layout-aware attacker concentrating 90% of the
traffic on one shard — under both array policies.  ``fail-stop`` dies
with its first shard; ``degraded`` re-decodes the dead shard's traffic
onto the survivors and keeps serving at reduced capacity.

Run:  python examples/array_scaling.py
"""

from repro.array import (ArrayConfig, ArrayEngine, InterleavedDecoder,
                         hotspot_workload, shard_attack_workload)

TOTAL_BLOCKS = 1 << 10
PAGE_BLOCKS = 16
MEAN_ENDURANCE = 400
SEED = 7


def build(shards: int, policy: str) -> ArrayConfig:
    return ArrayConfig(num_shards=shards,
                       shard_blocks=TOTAL_BLOCKS // shards,
                       policy=policy, page_blocks=PAGE_BLOCKS,
                       mean_endurance=MEAN_ENDURANCE, psi=12,
                       batch_writes=max(500, 4_000 // shards),
                       seed=SEED)


def campaign(shards: int, policy: str, attack: bool) -> ArrayEngine:
    config = build(shards, policy)
    decoder = InterleavedDecoder(shards, config.software_blocks,
                                 page_blocks=PAGE_BLOCKS)
    trace = (shard_attack_workload(decoder, shard=0, hot_share=0.9,
                                   seed=SEED) if attack
             else hotspot_workload(decoder, cov=3.0, seed=SEED))
    engine = ArrayEngine(config, trace, label=f"{policy}/{shards}x",
                         jobs=2)
    engine.run()
    return engine


def main() -> None:
    print(f"{TOTAL_BLOCKS} total blocks, mean endurance {MEAN_ENDURANCE}, "
          f"degraded arrays under a clustered workload\n")
    print(f"{'array':12s} {'lifetime':>12s} {'shard deaths':>13s} "
          f"{'rounds':>7s}")
    for shards in (1, 2, 4, 8):
        report = campaign(shards, "degraded", attack=False).result.report
        print(f"{shards}x shards   {report.total_writes:>12,} "
              f"{len(report.dead_shards):>13} {report.rounds:>7}")

    print("\nSingle-shard attack (90% of traffic on shard 0), 4 shards:")
    for policy in ("fail-stop", "degraded"):
        result = campaign(4, policy, attack=True).result
        report = result.report
        print(f"\n  policy={policy}: stop {report.stop.render()}")
        print(f"    served {report.total_writes:,} writes, "
              f"usable at stop {report.usable_fraction:.0%}, "
              f"dead shards {list(report.dead_shards)}")
        for shard in report.shards:
            died = (f"died @ ~{shard.died_at_global:,} global"
                    if shard.died_at_global is not None else "survived")
            print(f"    s{shard.shard}: share {shard.share:.2f} -> "
                  f"{shard.final_share:.2f}, {died}")
    print("\nFail-stop surrenders the whole array with its first shard;"
          "\ndegraded mode spreads the victim's traffic over the survivors"
          "\nand keeps serving until the last shard wears out.")


if __name__ == "__main__":
    main()
