#!/usr/bin/env python
"""Reboot recovery: the retired-page bitmap across power cycles.

WL-Reviver's reserved pages look like perfectly ordinary memory, so after
a reboot the OS would happily hand them back to applications — and
overwrite the shadow blocks holding other pages' redirected data.  The
framework therefore keeps a replicated one-bit-per-page bitmap in the PCM;
the boot-time memory diagnostics load it and withhold the marked pages
(Section III-A).

This example ages a chip until several pages have been acquired,
serializes the bitmap exactly as the hardware would store it, "reboots"
into a fresh OS page pool restored from the bitmap, and shows that the
restored pool agrees with the pre-reboot OS state bit for bit — at a
metadata cost of a few bytes and one PCM write per retirement per replica.

Run:  python examples/reboot_recovery.py
"""

from repro.config import ReviverConfig
from repro.errors import CapacityExhaustedError
from repro.mc import ReviverController
from repro.osmodel import PagePool
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.reviver import RetiredPageBitmap
from repro.ecc import ECP
from repro.rng import make_rng
from repro.wl import StartGap


def main() -> None:
    geometry = AddressGeometry(num_blocks=512, block_bytes=64,
                               page_bytes=1024)  # 16 blocks per page
    endurance = EnduranceModel(num_blocks=512, mean=400, cov=0.25,
                               max_order=8, seed=21)
    chip = PCMChip(geometry, ECP(endurance, 1), track_contents=True)
    leveler = StartGap(512)
    ospool = PagePool(leveler.logical_blocks, blocks_per_page=16,
                      utilization=0.9, seed=4)
    system = ReviverController(chip, leveler, ospool,
                               reviver_config=ReviverConfig(),
                               copy_on_retire=True)

    rng = make_rng(11)
    try:
        while system.reviver.ledger.pages_acquired < 4:
            system.service_write(int(rng.integers(ospool.virtual_blocks)),
                                 tag=system.writes)
    except CapacityExhaustedError:
        pass

    bitmap = system.reviver.bitmap
    blob = bitmap.to_bytes()
    print(f"aged the chip for {system.writes:,} writes: "
          f"{chip.failed_count} failed blocks hidden behind "
          f"{bitmap.retired_count} acquired pages")
    print(f"bitmap: {len(blob)} bytes per replica x "
          f"{bitmap.replicas} replicas = {bitmap.storage_bytes()} bytes "
          f"of PCM, {bitmap.metadata_writes} metadata writes so far")

    # ---- power cycle: all volatile state is gone; only the PCM remains.
    restored = RetiredPageBitmap.from_bytes(blob, bitmap.num_pages,
                                            replicas=bitmap.replicas)
    fresh_pool = PagePool(leveler.logical_blocks, blocks_per_page=16,
                          utilization=0.9, seed=4)
    for page in restored.retired_pages():
        fresh_pool.retire(page)  # withheld from the allocation pool

    before = sorted(p.page_id for p in ospool.pages if not p.is_usable)
    after = sorted(p.page_id for p in fresh_pool.pages if not p.is_usable)
    print(f"\nretired pages before reboot: {before}")
    print(f"retired pages after restore: {after}")
    assert before == after
    print("\nThe OS boots with exactly the pages WL-Reviver owns withheld;"
          "\nevery shadow block and inverse-pointer block stays untouched.")


if __name__ == "__main__":
    main()
