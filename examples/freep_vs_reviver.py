#!/usr/bin/env python
"""FREE-p's reservation dilemma versus WL-Reviver's implicit acquisition.

The adapted FREE-p of the paper's Section IV-C must choose its remap
reserve up front: too small and the reserve exhausts early (the
wear-leveler then dies at the next failure); too large and the sacrificed
capacity itself shortens life.  WL-Reviver sidesteps the dilemma by
reserving *virtual* space one OS page at a time, only when failures
actually demand it.  This example sweeps the reserve and prints the
usable-space milestones next to WL-Reviver's.

Run:  python examples/freep_vs_reviver.py [--benchmark ocean|mg|...]
"""

import argparse

from repro.experiments.common import build_engine, scaled_parameters
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="mg")
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small"])
    args = parser.parse_args()

    params = scaled_parameters(args.scale)
    rows = []
    for reserve in (0.02, 0.05, 0.10, 0.15, 0.20):
        engine = build_engine(params, args.benchmark, recovery="freep",
                              freep_reserve=reserve, dead_fraction=0.4)
        engine.run()
        rows.append([
            f"FREE-p {reserve:.0%}",
            f"{1.0 - reserve:.0%}",
            f"{engine.series.writes_to_usable(0.7) or 0:,}",
            f"{engine.region.slots_total - engine.region.slots_remaining}"
            f"/{engine.region.slots_total}",
            "yes" if engine.wl.frozen else "no",
        ])
    reviver = build_engine(params, args.benchmark, recovery="reviver",
                           dead_fraction=0.4)
    reviver.run()
    rows.append([
        "WL-Reviver",
        "100%",
        f"{reviver.series.writes_to_usable(0.7) or 0:,}",
        f"{reviver.ledger.pages_acquired} pages (on demand)",
        "no",
    ])
    headers = ["System", "Usable at start", "Writes to 70% usable",
               "Reserve used", "WL died"]
    print(format_table(
        headers, rows,
        title=f"FREE-p reserve sweep vs WL-Reviver "
              f"({args.benchmark}, scale={args.scale})"))
    print("\nFREE-p pays for its reserve whether failures come or not and "
          "collapses when it\nguesses low; WL-Reviver starts at 100% and "
          "grows its reserve one page per ~60\nfailures, with the "
          "wear-leveler running throughout.")


if __name__ == "__main__":
    main()
