#!/usr/bin/env python
"""Wear quality: what revival does to the *distribution* of wear.

Lifetime numbers say who survives longest; wear statistics say why.  This
example runs the same skewed workload over four configurations and prints
their end-of-life wear reports: CoV and Gini coefficient of per-block
wear, and how much of the chip's total endurance budget was actually
delivered before death.  A frozen wear-leveler strands almost all of it;
a revived one keeps consuming the budget evenly to the end.

Also demonstrates RegionedStartGap — the per-region deployment of
Start-Gap — running unmodified under the framework.

Run:  python examples/wear_quality.py
"""

from repro.config import StartGapConfig
from repro.ecc import ECP
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim import FastConfig, FastEngine, WearReport
from repro.traces import hotspot_distribution
from repro.wl import NoWL, RegionedStartGap, StartGap

NUM_BLOCKS = 2048
MEAN_ENDURANCE = 1_000
PSI = 8


def run(label: str, wl_factory, recovery: str):
    geometry = AddressGeometry(num_blocks=NUM_BLOCKS)
    endurance = EnduranceModel(num_blocks=NUM_BLOCKS, mean=MEAN_ENDURANCE,
                               cov=0.2, max_order=12, seed=5)
    chip = PCMChip(geometry, ECP(endurance, 6))
    trace = hotspot_distribution(NUM_BLOCKS, target_cov=9.0, seed=3)
    engine = FastEngine(chip, wl_factory(), trace,
                        FastConfig(recovery=recovery, batch_writes=5_000,
                                   seed=2))
    summary = engine.run()
    report = WearReport.of(chip)
    return label, summary.lifetime_writes, report


def main() -> None:
    configs = [
        ("identity, no recovery", lambda: NoWL(NUM_BLOCKS), "none"),
        ("Start-Gap, frozen at 1st failure",
         lambda: StartGap(NUM_BLOCKS, config=StartGapConfig(psi=PSI)),
         "none"),
        ("Start-Gap + WL-Reviver",
         lambda: StartGap(NUM_BLOCKS, config=StartGapConfig(psi=PSI)),
         "reviver"),
        ("identity + WL-Reviver", lambda: NoWL(NUM_BLOCKS), "reviver"),
        ("Regioned Start-Gap + WL-Reviver",
         lambda: RegionedStartGap(NUM_BLOCKS, num_regions=4,
                                  config=StartGapConfig(psi=PSI)),
         "reviver"),
    ]
    print(f"{NUM_BLOCKS} blocks, skewed workload (CoV 9), "
          f"run to 30% capacity lost\n")
    print(f"{'configuration':34s} {'lifetime':>12s} {'wear CoV':>9s} "
          f"{'Gini':>6s} {'budget used':>12s}")
    rows = [run(*config) for config in configs]
    for label, lifetime, report in rows:
        print(f"{label:34s} {lifetime:>12,} {report.cov:>9.3f} "
              f"{report.gini:>6.3f} {report.utilization:>11.1%}")
    print(
        "\nRevival is what lets the leveler keep spending the endurance "
        "budget: the frozen\nconfiguration dies having used a sliver of "
        "the chip's writes, while the revived\none exits with low Gini "
        "(even wear) and several times the delivered lifetime.")


if __name__ == "__main__":
    main()
