#!/usr/bin/env python
"""Telemetry: profiling a Start-Gap + WL-Reviver lifetime.

The simulator carries a zero-dependency observability layer: attach a
:class:`~repro.telemetry.TelemetrySession` to an engine and every
protocol event (links installed, chains switched, pages retired, crashes
recovered) is counted and traced, while the engine's phases accumulate a
wall-time profile.  Detached — the default — the instrumentation costs a
single ``is None`` test per site, so the lifetime-scale fast engine runs
exactly as before.

This example drives a short exact-engine lifetime with a seeded fault
schedule under full instrumentation, then prints the event census, the
reconciliation against the controller's own counters, and the per-phase
time profile.

Run:  python examples/telemetry_profile.py
"""

from repro.faultinject.campaign import _exact_system, _schedule_horizon
from repro.faultinject.hooks import ScheduleDriver
from repro.faultinject.schedule import random_schedule
from repro.telemetry import TelemetrySession, TraceWriter, attach_exact
from repro.telemetry.cli import _format_profile


def main() -> None:
    seed, num_blocks, mean, max_writes = 2014, 64, 150.0, 12_000
    engine = _exact_system(seed=seed, num_blocks=num_blocks, mean=mean)
    schedule = random_schedule(seed, num_blocks,
                               _schedule_horizon(num_blocks, mean, max_writes))
    ScheduleDriver(schedule).attach_exact(engine)

    session = TelemetrySession(writer=TraceWriter(meta={"seed": seed}))
    attach_exact(session, engine)
    engine.run(max_writes=max_writes)
    engine.verify_all()

    controller = engine.controller
    reviver = controller.reviver
    print(f"instrumented lifetime: {controller.writes:,} writes, "
          f"{controller.chip.failed_count} failed blocks, "
          f"{controller.crashes_recovered} crash(es) recovered\n")

    print("event census (trace records per kind):")
    for kind, count in sorted(session.writer.counts.items()):
        print(f"  {kind:<20} {count}")

    # Every event reconciles against the protocol's own ground truth.
    assert session.event_count("pointer-switch") == reviver.resolver.switches
    assert session.event_count("page-retire") == \
        controller.reporter.report_count
    assert session.event_count("crash") == controller.crashes_recovered
    assert session.event_count("read-retry") == \
        controller.transient_read_errors
    print("\nreconciliation: switches, retirements, crashes, and read "
          "retries\nall match the controller's counters exactly.")

    print("\nper-phase wall-time profile:")
    session.append_profile()
    for line in _format_profile(
            {name: dict(stats) for name, stats in session.profile().items()}):
        print(f"  {line}")
    print(f"\ntrace: {session.writer.seq} records; save it and inspect "
          f"with\n  python -m repro.telemetry summarize <file>")


if __name__ == "__main__":
    main()
