#!/usr/bin/env python
"""Line coverage of the telemetry package, with no external tooling.

CI measures coverage with pytest-cov; this script provides the same
telemetry-package check locally using only the standard library
(``sys.settrace``), so the "telemetry is fully covered" claim can be
verified in any environment::

    PYTHONPATH=src python tools/telemetry_coverage.py

It runs the telemetry test modules in-process under a line tracer scoped
to ``src/repro/telemetry`` and reports, per file, the executable lines
(from the compiled code objects) that the tests never hit.  Exits 1 when
the package's total line coverage falls below the floor.
"""

from __future__ import annotations

import ast
import dis
import sys
from pathlib import Path
from types import CodeType, FrameType
from typing import Any, Dict, Optional, Set

REPO = Path(__file__).resolve().parent.parent
PACKAGE = REPO / "src" / "repro" / "telemetry"
TESTS = ["tests/test_telemetry.py", "tests/test_golden_trace.py",
         "tests/test_reviver_properties.py"]

#: Coverage floor for the telemetry package, in percent.
FLOOR = 100.0


def _executable_lines(code: CodeType, lines: Set[int]) -> None:
    for _, line in dis.findlinestarts(code):
        # CPython 3.11+ attributes module set-up instructions to line 0
        # (and sometimes None); neither is a source line.
        if line:
            lines.add(line)
    for const in code.co_consts:
        if isinstance(const, CodeType):
            _executable_lines(const, lines)


def _excluded_lines(source: str) -> Set[int]:
    """Lines that are unreachable by design.

    Two exclusions, both matching what pytest-cov applies in CI so the
    two measurements agree: ``if TYPE_CHECKING:`` bodies (the guard line
    itself executes and must be hit; only the import block underneath is
    typing-time-only) and lines carrying coverage.py's conventional
    ``# pragma: no cover`` marker.
    """
    excluded: Set[int] = set()
    for node in ast.walk(ast.parse(source)):
        if (isinstance(node, ast.If) and isinstance(node.test, ast.Name)
                and node.test.id == "TYPE_CHECKING"):
            for child in node.body:
                end = child.end_lineno or child.lineno
                excluded.update(range(child.lineno, end + 1))
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "# pragma: no cover" in text:
            excluded.add(lineno)
    return excluded


def collect_executable(path: Path) -> Set[int]:
    """Every line the compiler can start executing in *path*."""
    source = path.read_text()
    lines: Set[int] = set()
    _executable_lines(compile(source, str(path), "exec"), lines)
    # Module docstring lines register as line 1 starts; keep them — they
    # execute on import, which the test run performs.
    return lines - _excluded_lines(source)


def main() -> int:
    hit: Dict[str, Set[int]] = {}
    prefix = str(PACKAGE)

    def tracer(frame: FrameType, event: str,
               arg: Any) -> Optional[Any]:
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            # Returning None would switch off local tracing for the whole
            # call subtree, losing telemetry frames called from it.
            return tracer
        if event == "line":
            hit.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    import pytest

    sys.settrace(tracer)
    try:
        status = pytest.main(["-q", "--no-header", "-p", "no:cacheprovider",
                              *TESTS])
    finally:
        sys.settrace(None)
    if status != 0:
        print("test run failed; coverage not evaluated", file=sys.stderr)
        return int(status)

    total_exec = 0
    total_hit = 0
    print(f"\ntelemetry package coverage ({', '.join(TESTS)}):")
    for path in sorted(PACKAGE.glob("*.py")):
        executable = collect_executable(path)
        covered = hit.get(str(path), set()) & executable
        missing = sorted(executable - covered)
        total_exec += len(executable)
        total_hit += len(covered)
        pct = 100.0 * len(covered) / len(executable) if executable else 100.0
        note = "" if not missing else f"  missing: {missing}"
        print(f"  {path.name:<14} {pct:6.1f}% "
              f"({len(covered)}/{len(executable)}){note}")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':<14} {total_pct:6.1f}% ({total_hit}/{total_exec})")
    if total_pct < FLOOR:
        print(f"coverage {total_pct:.1f}% is below the {FLOOR:.0f}% floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
