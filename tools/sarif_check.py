#!/usr/bin/env python
"""Validate a SARIF log emitted by ``python -m repro.analysis``.

CI uploads the analyzer's SARIF output as a job artifact; a malformed
document uploads fine and then silently fails to annotate anything, so
the gate runs this structural check first::

    PYTHONPATH=src python tools/sarif_check.py analysis.sarif

Exits 0 when the document conforms (prints a one-line summary), 1 with
one problem per line otherwise, 2 on usage errors.  The check is
:func:`repro.analysis.sarif.validate_sarif` — self-contained on purpose,
since the container installs no JSON-schema package.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import validate_sarif  # noqa: E402


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python tools/sarif_check.py <file.sarif>",
              file=sys.stderr)
        return 2
    path = Path(args[0])
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"unreadable SARIF {path}: {exc}", file=sys.stderr)
        return 1
    problems = validate_sarif(document)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    runs = document["runs"]
    results = sum(len(run.get("results", [])) for run in runs)
    print(f"{path}: valid SARIF {document['version']}, "
          f"{len(runs)} run(s), {results} result(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
