"""Setup shim: lets `python setup.py develop` work in offline environments
lacking the `wheel` package (PEP 660 editable installs require it).
All real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
