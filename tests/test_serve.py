"""The online serving layer: admission, breakers, failover, determinism.

The heavyweight properties (byte-identical runs across job counts, the
zero-drop accounting identity under mid-traffic shard death) each run
one small campaign; unit tests cover the circuit breaker's exact cycle
and the degraded re-home rule directly.
"""

import json

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.faultinject import (FaultAction, FaultSchedule,
                               shard_death_schedule, shard_stall_schedule)
from repro.serve import (CircuitBreaker, OUTCOMES, Request, ServeConfig,
                         ServiceEngine, build_report)


def small_config(**overrides):
    """A seconds-fast config; overrides land on top."""
    base = dict(num_shards=2, shard_blocks=128, clients=4,
                total_requests=300, think_ticks=2, seed=11)
    base.update(overrides)
    return ServeConfig(**base)


def outcome_counts(result):
    return {name: result.outcomes[name] for name in OUTCOMES}


# --------------------------------------------------------------- breaker


class TestCircuitBreaker:
    def test_full_cycle_closed_open_halfopen_closed(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10)
        assert breaker.admit(0) == "ok"
        for tick in range(3):
            breaker.record_failure(tick, probe=False)
        assert breaker.state == "open"
        assert breaker.opened == 1
        # Open: fast-fail until the cooldown elapses.
        assert breaker.admit(5) == "fast-fail"
        # Half-open: exactly one probe is admitted; others fast-fail.
        assert breaker.admit(12) == "probe"
        assert breaker.state == "half-open"
        assert breaker.admit(12) == "fast-fail"
        breaker.record_success(probe=True)
        assert breaker.state == "closed"
        assert breaker.closed_after_probe == 1
        assert breaker.admit(13) == "ok"

    def test_probe_failure_reopens_a_full_cooldown(self):
        breaker = CircuitBreaker(threshold=2, cooldown=8)
        for tick in range(2):
            breaker.record_failure(tick, probe=False)
        assert breaker.admit(9) == "probe"
        breaker.record_failure(9, probe=True)
        assert breaker.state == "open"
        assert breaker.opened == 2
        assert breaker.admit(12) == "fast-fail"
        assert breaker.admit(17) == "probe"

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=4)
        breaker.record_failure(0, probe=False)
        breaker.record_success(probe=False)
        breaker.record_failure(1, probe=False)
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0, cooldown=4)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=1, cooldown=0)


# ----------------------------------------------------------- determinism


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        config = small_config()
        a = ServiceEngine(config).run()
        b = ServiceEngine(config).run()
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = ServiceEngine(small_config(seed=1)).run()
        b = ServiceEngine(small_config(seed=2)).run()
        assert a.to_json() != b.to_json()

    def test_jobs_do_not_change_bytes_under_mid_traffic_death(self):
        """The PR's pinned regression: merged telemetry and the SLO
        report are byte-identical at --jobs 1 vs --jobs 2 while a shard
        dies mid-traffic under the degraded policy."""
        config = small_config(total_requests=500, clients=6)
        schedule = shard_death_schedule(1, at_write=50,
                                        num_blocks=config.shard_blocks)
        serial = ServiceEngine(config, schedule).run(jobs=1)
        pooled = ServiceEngine(config, schedule).run(jobs=2)
        assert serial.outcomes["ok"] > 0
        assert serial.report["resilience"]["deaths"] == 1
        assert serial.to_json() == pooled.to_json()
        assert json.dumps(serial.snapshot, sort_keys=True) == \
            json.dumps(pooled.snapshot, sort_keys=True)


# ------------------------------------------------- accounting & failover


class TestAccounting:
    def test_zero_drop_identity_under_death(self):
        config = small_config(total_requests=400, clients=6)
        schedule = shard_death_schedule(0, at_write=40,
                                        num_blocks=config.shard_blocks)
        result = ServiceEngine(config, schedule).run()
        counts = outcome_counts(result)
        assert sum(counts.values()) == config.total_requests
        assert result.report["counts"]["issued"] == config.total_requests

    def test_identity_violation_is_a_protocol_error(self):
        engine = ServiceEngine(small_config(total_requests=10))
        engine.issued = 3  # corrupt the books
        with pytest.raises(ProtocolError, match="accounting"):
            engine._check_identity()

    def test_degraded_failover_keeps_serving(self):
        config = small_config(total_requests=500, clients=6)
        schedule = shard_death_schedule(1, at_write=50,
                                        num_blocks=config.shard_blocks)
        result = ServiceEngine(config, schedule).run()
        resilience = result.report["resilience"]
        assert resilience["deaths"] == 1
        assert resilience["failover"] > 0
        assert result.report["shards"]["live"] == 1
        # No hard failures under degraded: displaced requests re-home.
        assert result.outcomes["failed"] == 0
        assert result.outcomes["ok"] > config.total_requests // 2
        # The dead shard's gauge row records the death tick.
        gauges = result.snapshot["gauges"]
        assert gauges["serve.s1.alive"] == 0
        assert gauges["serve.s1.died_at"] >= 0
        assert gauges["serve.s0.alive"] == 1

    def test_fail_stop_fails_dead_shard_traffic(self):
        config = small_config(total_requests=400, clients=6,
                              policy="fail-stop")
        schedule = shard_death_schedule(1, at_write=40,
                                        num_blocks=config.shard_blocks)
        result = ServiceEngine(config, schedule).run()
        assert result.outcomes["failed"] > 0
        assert sum(outcome_counts(result).values()) == config.total_requests

    def test_rehome_rule_matches_the_array_engine(self):
        """Dead shard's local address l re-homes to live[l % len(live)],
        keeping its local position — the ArrayEngine redistribution rule."""
        config = ServeConfig(num_shards=3, shard_blocks=64, clients=1,
                             total_requests=1, seed=3)
        engine = ServiceEngine(config)
        engine.stations[1].alive = False
        live = [0, 2]
        local = 5
        address = int(engine.decoder.encode(1, local))
        request = Request(rid=0, client=0, address=address, is_write=False,
                          issued_at=0, deadline=100)
        engine._route(request)
        expected = live[local % len(live)]
        assert request in engine.stations[expected].queue


# ---------------------------------------------------- admission control


class TestAdmission:
    def test_shed_mode_rejects_on_full_queue(self):
        config = small_config(total_requests=400, clients=16,
                              queue_depth=1, batch_max=1, think_ticks=0,
                              admission="shed", write_ticks=6,
                              read_ticks=4)
        result = ServiceEngine(config).run()
        assert result.outcomes["shed"] > 0
        assert sum(outcome_counts(result).values()) == config.total_requests

    def test_block_mode_parks_instead_of_shedding(self):
        config = small_config(total_requests=400, clients=16,
                              queue_depth=1, batch_max=1, think_ticks=0,
                              admission="block", write_ticks=6,
                              read_ticks=4)
        result = ServiceEngine(config).run()
        assert result.outcomes["shed"] == 0
        assert result.report["resilience"]["blocked"] > 0
        assert sum(outcome_counts(result).values()) == config.total_requests

    def test_tiny_deadline_is_enforced(self):
        config = small_config(total_requests=300, clients=16,
                              queue_depth=2, batch_max=1, think_ticks=0,
                              admission="block", deadline_ticks=4,
                              write_ticks=6, read_ticks=4)
        result = ServiceEngine(config).run()
        assert result.outcomes["deadline"] > 0
        assert sum(outcome_counts(result).values()) == config.total_requests


# ------------------------------------------------- stalls and breakers


class TestBreakerIntegration:
    def test_stall_trips_and_recovers_the_breaker(self):
        config = small_config(total_requests=600, clients=8,
                              breaker_threshold=3, breaker_cooldown=16)
        schedule = shard_stall_schedule(0, at_write=30, requests=12)
        result = ServiceEngine(config, schedule).run()
        resilience = result.report["resilience"]
        assert resilience["stalled"] == 12
        assert resilience["breaker_opened"] >= 1
        assert resilience["breaker_closed"] >= 1  # half-open probe healed
        assert resilience["retries"] > 0
        assert result.report["resilience"]["deaths"] == 0
        assert sum(outcome_counts(result).values()) == config.total_requests

    def test_bounded_retries_exhaust_into_errors(self):
        config = small_config(total_requests=300, clients=4,
                              retry_limit=2, deadline_ticks=5_000)
        schedule = shard_stall_schedule(0, at_write=20, requests=40)
        result = ServiceEngine(config, schedule).run()
        assert result.outcomes["error"] > 0
        assert result.report["resilience"]["retries_exhausted"] == \
            result.outcomes["error"]
        assert sum(outcome_counts(result).values()) == config.total_requests

    def test_brownout_steers_writes_off_worn_shards(self):
        config = small_config(total_requests=400, clients=4,
                              mean_endurance=2.0, brownout_wear=0.5)
        result = ServiceEngine(config).run()
        assert result.report["resilience"]["steered"] > 0
        assert result.outcomes["ok"] == config.total_requests


# ------------------------------------------------------------ reporting


class TestReporting:
    def test_report_derives_from_snapshot_only(self):
        config = small_config()
        result = ServiceEngine(config).run()
        assert build_report(result.snapshot, config) == result.report

    def test_latency_quantiles_present_and_ordered(self):
        result = ServiceEngine(small_config()).run()
        for kind in ("read", "write"):
            table = result.report["latency"][kind]
            assert table["p50"] <= table["p95"] <= table["p99"]

    def test_merged_latency_histogram_covers_all_ok_requests(self):
        result = ServiceEngine(small_config()).run()
        histograms = result.snapshot["histograms"]
        total = sum(histograms[f"serve.latency.{kind}"]["total"]
                    for kind in ("read", "write"))
        assert total == result.outcomes["ok"]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(num_shards=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(policy="explode")
        with pytest.raises(ConfigurationError):
            ServeConfig(admission="drop")
        with pytest.raises(ConfigurationError):
            ServeConfig(write_ratio=1.5)
        with pytest.raises(ConfigurationError):
            ServeConfig(retry_limit=0)


# ------------------------------------------------------------------ CLI


class TestCli:
    def test_cli_kill_run_writes_slo_artifact(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        out = tmp_path / "slo.json"
        rc = main(["--shards", "2", "--shard-blocks", "128", "--clients",
                   "4", "--requests", "300", "--kill-shard", "1",
                   "--kill-at", "40", "--jobs", "2", "--json", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "latency[read]" in printed and "deaths=1" in printed
        payload = json.loads(out.read_text())
        assert payload["report"]["resilience"]["deaths"] == 1
        assert payload["report"]["counts"]["issued"] == 300

    def test_cli_stall_run(self, capsys):
        from repro.serve.__main__ import main

        rc = main(["--shards", "2", "--shard-blocks", "128", "--clients",
                   "4", "--requests", "300", "--stall-shard", "0",
                   "--stall-at", "30", "--stall-requests", "8", "--quiet"])
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_cli_rejects_bad_config(self, capsys):
        from repro.serve.__main__ import main

        rc = main(["--shards", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--shards", "2",
             "--shard-blocks", "64", "--clients", "2", "--requests", "60"],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert "outcomes:" in proc.stdout

    def test_custom_schedule_round_trips_into_the_engine(self):
        """A hand-built mixed schedule drives both a stall and a death."""
        config = small_config(total_requests=500, clients=6)
        schedule = FaultSchedule(actions=(
            FaultAction("shard-stall", at_write=20, requests=4, shard=0),
            FaultAction("fail-block", at_write=60,
                        das=tuple(range(config.shard_blocks)), shard=1),
        ), seed=None, name="mixed")
        parsed = FaultSchedule.from_json(schedule.to_json())
        result = ServiceEngine(config, parsed).run()
        assert result.report["resilience"]["deaths"] == 1
        assert result.report["resilience"]["stalled"] >= 4
        assert sum(outcome_counts(result).values()) == config.total_requests


# ----------------------------------------------- workload-package dedupe


class TestWorkloadPackageDedupe:
    """The client streams now come from ``repro.workloads``; these pins
    prove the dedupe kept the served behavior byte-identical (hashes
    recorded from the pre-refactor engine)."""

    PINS = {
        "zipf": ("b05ed60ead7efee49140783b2deb1c897"
                 "3d87e359f9aaf11ca71888d1f77b164"),
        "uniform": ("51d8629df97bb8c8a8ea2e7e58b609f5"
                    "9735503e268ca67c9c75a5588f9f4c81"),
    }

    @staticmethod
    def behavior_hash(result):
        import hashlib
        payload = {"snapshot": result.snapshot, "report": result.report,
                   "duration": result.duration,
                   "outcomes": result.outcomes}
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def test_zipf_behavior_is_pinned(self):
        result = ServiceEngine(small_config()).run()
        assert self.behavior_hash(result) == self.PINS["zipf"]

    def test_uniform_behavior_is_pinned(self):
        config = ServeConfig(num_shards=4, shard_blocks=256, clients=6,
                             total_requests=400, seed=23,
                             workload="uniform")
        result = ServiceEngine(config).run()
        assert self.behavior_hash(result) == self.PINS["uniform"]

    def test_streams_come_from_the_workload_package(self):
        from repro.workloads import (uniform_request_stream,
                                     zipf_request_stream)
        from repro.serve import engine as serve_engine
        assert serve_engine.zipf_request_stream is zipf_request_stream
        assert serve_engine.uniform_request_stream is uniform_request_stream
