"""Unit tests for single-level Security Refresh."""

import numpy as np
import pytest

from repro.config import SecurityRefreshConfig
from repro.errors import ConfigurationError
from repro.wl import NullPort, SecurityRefresh


def make_sr(device: int = 64, interval: int = 5, seed: int = 3):
    return SecurityRefresh(device,
                           config=SecurityRefreshConfig(
                               refresh_interval=interval, seed=seed))


class TestMapping:
    def test_initial_identity(self):
        sr = make_sr()
        # key_prev = 0 and nothing refreshed: identity mapping at boot.
        assert all(sr.map(pa) == pa for pa in range(64))

    def test_bijection_initial(self):
        make_sr().check_bijection()

    def test_bijection_across_rounds(self):
        sr = make_sr(interval=1)
        port = NullPort()
        for step in range(3 * sr.logical_blocks):
            sr.tick(port)
            if step % 13 == 0:
                sr.check_bijection()
        sr.check_bijection()

    def test_map_many_matches_scalar(self):
        sr = make_sr(interval=1)
        port = NullPort()
        for _ in range(40):
            sr.tick(port)
        pas = np.arange(64)
        assert (sr.map_many(pas)
                == np.array([sr.map(int(p)) for p in pas])).all()

    def test_all_blocks_mapped(self):
        # No gap line: logical == device (implicit buffer, Theorem 3).
        assert make_sr().logical_blocks == 64


class TestRefresh:
    def test_refresh_cadence(self):
        sr = make_sr(interval=5)
        port = NullPort()
        for _ in range(50):
            sr.tick(port)
        assert sr.refreshes == 10

    def test_round_completion_rotates_keys(self):
        sr = make_sr(interval=1)
        port = NullPort()
        first_key = sr.key_cur
        for _ in range(sr.logical_blocks):
            sr.tick(port)
        assert sr.rounds == 1
        assert sr.key_prev == first_key

    def test_swap_changes_two_pas(self):
        sr = make_sr(interval=1)
        port = NullPort()
        for _ in range(sr.logical_blocks):
            before = {pa: sr.map(pa) for pa in range(64)}
            changed = sr.tick(port)
            after = {pa: sr.map(pa) for pa in range(64)}
            moved = sorted(pa for pa in before if before[pa] != after[pa])
            assert sorted(changed) == moved
            assert len(moved) in (0, 2)

    def test_pair_partner_skipped(self):
        """Each pair is physically swapped once per round."""
        sr = make_sr(interval=1, seed=1)
        port = NullPort()
        for _ in range(sr.logical_blocks):
            sr.tick(port)
        # One swap (2 writes) per unordered pair with distinct members.
        key = sr.key_prev  # the key of the completed round
        distinct_pairs = sum(1 for ma in range(64) if (ma ^ key) > ma)
        assert len(port.writes) == 2 * distinct_pairs

    def test_schedule_due(self):
        sr = make_sr(interval=5)
        assert sr.schedule_due(50) == 10
        sr.bulk_migrations(3)
        assert sr.schedule_due(50) == 7

    def test_bulk_rows_are_swap_pairs(self):
        sr = make_sr(interval=1)
        rows = sr.bulk_migrations(sr.logical_blocks)
        assert rows.shape[1] == 2
        assert rows.shape[0] % 2 == 0
        # Rows come in (a,b),(b,a) pairs.
        for index in range(0, len(rows), 2):
            a, b = rows[index]
            assert (rows[index + 1] == [b, a]).all()


class TestLifecycle:
    def test_freeze(self):
        sr = make_sr(interval=1)
        port = NullPort()
        sr.freeze()
        for _ in range(20):
            assert sr.tick(port) == []
        assert sr.refreshes == 0

    def test_deferred_when_port_busy(self):
        class BusyPort(NullPort):
            def can_start_migration(self):
                return False

        sr = make_sr(interval=1)
        busy = BusyPort()
        for _ in range(7):
            sr.tick(busy)
        assert sr.refreshes == 0
        sr.tick(NullPort())
        assert sr.refreshes >= 7

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SecurityRefresh(100)

    def test_describe(self):
        assert "SecurityRefresh" in make_sr().describe()
