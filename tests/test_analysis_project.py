"""Project model and dataflow engine: the whole-program substrate.

The four cross-module rules are only as good as the facts below: module
naming, import edges, the register_batchable call index, ``is None``
refinement, try/finally exit capture, and the numpy view-ness domain.
Each is pinned here in isolation so a rule regression can be bisected to
either the rule or the substrate.
"""

import ast
from pathlib import Path

from repro.analysis.core import SourceFile
from repro.analysis.dataflow import (Env, FunctionFlow, Viewness,
                                     ViewnessFlow, expr_key, is_basic_index,
                                     viewness_of)
from repro.analysis.project import build_project, module_name_for


def project_of(*files):
    sources = [SourceFile(Path(path), text) for path, text in files]
    return build_project(sources)


class TestModuleNaming:
    def test_src_rooted_paths_strip_the_root(self):
        assert module_name_for(Path("src/repro/sim/fast.py")) \
            == "repro.sim.fast"

    def test_init_names_its_package(self):
        assert module_name_for(Path("src/repro/sim/__init__.py")) \
            == "repro.sim"

    def test_unrooted_paths_keep_their_shape(self):
        assert module_name_for(Path("tools/sarif_check.py")) \
            == "tools.sarif_check"
        assert module_name_for(Path("benchmarks/test_fast_bench.py")) \
            == "benchmarks.test_fast_bench"


class TestProjectModel:
    def test_import_graph_has_only_local_edges(self):
        project = project_of(
            ("src/repro/a.py", "import repro.b\nimport json\n"),
            ("src/repro/b.py", "x = 1\n"))
        graph = project.import_graph()
        assert graph["repro.a"] == {"repro.b"}
        assert graph["repro.b"] == set()
        assert project.importers_of("repro.b") == {"repro.a"}

    def test_from_import_of_package_reaches_children(self):
        project = project_of(
            ("src/repro/user.py", "from repro.sim import batched\n"),
            ("src/repro/sim/batched.py", "x = 1\n"))
        assert project.import_graph()["repro.user"] \
            == {"repro.sim.batched"}

    def test_relative_imports_resolve(self):
        project = project_of(
            ("src/repro/sim/fast.py", "from .batched import run_batched\n"),
            ("src/repro/sim/batched.py", "x = 1\n"))
        assert project.import_graph()["repro.sim.fast"] \
            == {"repro.sim.batched"}

    def test_functions_carry_qualnames_and_params(self):
        project = project_of(("src/repro/m.py", (
            "import numpy as np\n"
            "class Engine:\n"
            "    def step(self, wear: np.ndarray, telem=None) -> None:\n"
            "        total = wear.sum()\n"
            "        self.note(total)\n")))
        (fn,) = project.functions_in("src/repro/m.py")
        assert fn.qualname == "Engine.step"
        assert fn.params == (("self", None, False),
                             ("wear", "np.ndarray", False),
                             ("telem", None, True))
        assert fn.assigned == {"total"}
        assert {"sum", "note"} <= fn.calls

    def test_call_index_spans_modules(self):
        project = project_of(
            ("src/repro/a.py", "register_batchable('a:_c', build, fin)\n"),
            ("src/repro/b.py", "sim.register_batchable('b:_c', mk, done)\n"))
        sites = project.calls_of("register_batchable")
        assert {site.module for site in sites} == {"repro.a", "repro.b"}

    def test_batchable_pairs_positional_and_keyword(self):
        project = project_of(
            ("src/repro/a.py",
             "register_batchable('a:_cell', _build_cell, _finish_cell)\n"),
            ("src/repro/b.py",
             "register_batchable('b:_cell', build=_mk, finish=_done)\n"))
        assert project.batchable_pairs() == {
            ("repro.a", "_build_cell"), ("repro.a", "_finish_cell"),
            ("repro.b", "_mk"), ("repro.b", "_done")}


def run_flow(flow, text, initial=None):
    node = ast.parse(text).body[0]
    flow.run(node, initial)
    return flow


class _ExitRecorder(FunctionFlow):
    """Record (kind, env snapshot) at every function exit."""

    def __init__(self):
        super().__init__()
        self.exits = []

    def on_exit(self, env, stmt, kind):
        self.exits.append((kind, dict(env)))


class _NoneTracker(_ExitRecorder):
    """Track ``x is [not] None`` refinements like HOOK-NONE does."""

    def on_none_test(self, key, is_none, env, test):
        env[key] = "null" if is_none else "nonnull"


class TestFunctionFlow:
    def test_is_none_refinement_splits_branches(self):
        flow = run_flow(_NoneTracker(), (
            "def f(self):\n"
            "    if self.telem is not None:\n"
            "        return 'armed'\n"
            "    return 'idle'\n"))
        assert sorted(env.get("self.telem") for _, env in flow.exits) \
            == ["nonnull", "null"]

    def test_early_return_guard_dominates_the_tail(self):
        flow = run_flow(_NoneTracker(), (
            "def f(self):\n"
            "    if self.telem is None:\n"
            "        return\n"
            "    self.telem.emit('x')\n"))
        tail = [env for kind, env in flow.exits if kind == "fallthrough"]
        assert tail == [{"self.telem": "nonnull"}]

    def test_not_and_conjunction_refine_through(self):
        flow = run_flow(_NoneTracker(), (
            "def f(self, ready):\n"
            "    if not (self.telem is None) and ready:\n"
            "        return 'armed'\n"
            "    return 'idle'\n"))
        armed = flow.exits[0][1]
        assert armed["self.telem"] == "nonnull"

    def test_assignment_kills_stale_facts(self):
        flow = run_flow(_NoneTracker(), (
            "def f(self):\n"
            "    if self.telem is None:\n"
            "        return\n"
            "    self.telem = make()\n"
            "    return self.telem\n"))
        kind, env = flow.exits[-1]
        assert "self.telem" not in env

    def test_finally_sees_the_exceptional_environment(self):
        # The raise happens before ``after`` binds: the captured escape
        # env must be the join of *pre-statement* states, so ``after``
        # cannot be assumed bound on the exceptional path.
        class Snap(_ExitRecorder):
            def on_assign(self, target, value, env, stmt):
                if isinstance(target, ast.Name):
                    env[target.id] = "bound"

        flow = run_flow(Snap(), (
            "def f():\n"
            "    before = 1\n"
            "    try:\n"
            "        boom()\n"
            "        after = 2\n"
            "    finally:\n"
            "        cleanup()\n"
            "    return after\n"))
        # Fall-through exit exists and has both names bound.
        assert any(env.get("after") == "bound" for _, env in flow.exits)

    def test_loop_body_facts_reach_a_fixpoint(self):
        class Collect(ViewnessFlow):
            pass

        flow = Collect(("wear",))
        env = flow.initial_env()
        node = ast.parse(
            "def f(wear):\n"
            "    for i in range(3):\n"
            "        row = wear[i]\n").body[0]
        flow.run(node, env)  # terminates: bounded passes, no exception


class TestExprKey:
    def test_dotted_chains(self):
        assert expr_key(ast.parse("self.telem", mode="eval").body) \
            == "self.telem"
        assert expr_key(ast.parse("x", mode="eval").body) == "x"
        assert expr_key(ast.parse("f().x", mode="eval").body) is None


class TestViewnessDomain:
    def _classify(self, expr_text, env=None):
        expr = ast.parse(expr_text, mode="eval").body
        return viewness_of(expr, dict(env or {}))

    def test_parameter_views_propagate_through_ravel_and_slices(self):
        env = {"wear": Viewness.VIEW}
        assert self._classify("wear.ravel()", env) is Viewness.VIEW
        assert self._classify("wear[1:]", env) is Viewness.VIEW

    def test_copy_and_arithmetic_are_fresh(self):
        env = {"wear": Viewness.VIEW}
        assert self._classify("wear.copy()", env) is Viewness.FRESH
        assert self._classify("wear + 1", env) is Viewness.FRESH
        assert self._classify("np.zeros(4)") is Viewness.FRESH

    def test_comparisons_build_masks(self):
        env = {"wear": Viewness.VIEW}
        assert self._classify("wear > 7", env) is Viewness.MASK
        assert self._classify("~mask", {"mask": Viewness.MASK}) \
            is Viewness.MASK

    def test_attribute_rows_are_views(self):
        assert self._classify("self.wear[i]") is Viewness.VIEW

    def test_advanced_indexing_copies(self):
        env = {"wear": Viewness.VIEW, "mask": Viewness.MASK}
        assert self._classify("wear[mask]", env) is Viewness.FRESH

    def test_basic_index_classification(self):
        env: Env = {"mask": Viewness.MASK, "idx": Viewness.FRESH}
        examples = {
            "1": True, "i": True, "1:": True, "i + 1": True,
            "self.gap": True, "(i, 0)": True,
            "mask": False, "idx": False, "[0, 2]": False,
            "wear > 3": False, "np.nonzero(w)": False,
        }
        for text, expected in examples.items():
            index = ast.parse(f"x[{text}]", mode="eval").body.slice
            assert is_basic_index(index, env) is expected, text

    def test_view_join_is_conservative(self):
        flow = ViewnessFlow(())
        assert flow.join_values(Viewness.VIEW, Viewness.FRESH) \
            is Viewness.VIEW
        assert flow.join_values(Viewness.FRESH, Viewness.MASK) \
            is Viewness.UNKNOWN
