"""Unit tests for size units and address arithmetic helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    BITS_PER_BLOCK,
    GIB,
    KIB,
    MIB,
    blocks_per_page,
    ceil_div,
    format_size,
    is_power_of_two,
    log2_exact,
    parse_size,
)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 12, 1000):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        assert log2_exact(1 << 30) == 30

    def test_log2_exact_rejects(self):
        with pytest.raises(ConfigurationError):
            log2_exact(48)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4
        assert ceil_div(1, 4) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ConfigurationError):
            ceil_div(4, 0)


class TestBlocksPerPage:
    def test_paper_default(self):
        # 4 KB page / 64 B block = 64 PAs per page (paper's example).
        assert blocks_per_page() == 64

    def test_custom(self):
        assert blocks_per_page(512, 64) == 8

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            blocks_per_page(1000, 64)

    def test_bits_per_block_is_one_ecp_group(self):
        assert BITS_PER_BLOCK == 512


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("1GB", GIB), ("64MB", 64 * MIB), ("4KB", 4 * KIB),
        ("1GiB", GIB), ("512B", 512), ("123", 123),
        ("2.5KB", int(2.5 * KIB)), (" 8 MB ".strip(), 8 * MIB),
    ])
    def test_parses(self, text, expected):
        assert parse_size(text) == expected

    def test_case_insensitive(self):
        assert parse_size("1gb") == parse_size("1GB")

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_size("lots")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            parse_size("")


class TestFormatSize:
    def test_round_trip(self):
        for text in ("1GB", "64MB", "4KB"):
            assert format_size(parse_size(text)) == text

    def test_odd_bytes(self):
        assert format_size(1000) == "1000B"
