"""Tests for both simulation engines, including cross-engine agreement."""

import numpy as np
import pytest

from repro.config import StartGapConfig
from repro.ecc import ECP, FreePRegion
from repro.osmodel.allocator import PagePool
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim import (ExactEngine, FastConfig, FastEngine, StopCause,
                       StopReason)
from repro.traces import hotspot_distribution
from repro.wl import NoWL, StartGap

from .conftest import make_reviver_system


class FixedECC:
    """ECC stub with hand-picked thresholds and no extension."""

    def __init__(self, thresholds):
        self.thresholds = np.asarray(thresholds, dtype=np.int64)

    def threshold(self, da):
        return int(self.thresholds[da])

    def try_extend(self, da):
        return False


def make_fast(recovery: str = "reviver", num_blocks: int = 512,
              mean: float = 300.0, cov_target: float = 6.0,
              psi: int = 10, reserve: float = 0.1, seed: int = 3,
              dead: float = 0.3, batch: int = 2000,
              stop_on_capacity: bool = True):
    geometry = AddressGeometry(num_blocks=num_blocks)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=0.2,
                               max_order=10, seed=seed)
    chip = PCMChip(geometry, ECP(endurance, 1))
    trace = hotspot_distribution(num_blocks, cov_target, seed=seed)
    config = FastConfig(recovery=recovery, freep_reserve=reserve,
                        dead_fraction=dead, batch_writes=batch, seed=seed,
                        stop_on_capacity=stop_on_capacity)
    if recovery == "freep":
        region = FreePRegion(num_blocks, reserve)
        wl = StartGap(region.working_blocks,
                      config=StartGapConfig(psi=psi))
        return FastEngine(chip, wl, trace, config, region=region)
    wl = StartGap(num_blocks, config=StartGapConfig(psi=psi))
    return FastEngine(chip, wl, trace, config)


class TestExactEngine:
    def test_runs_to_dead_fraction(self):
        controller, chip, _, _ = make_reviver_system(
            mean=150, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, dead_fraction=0.2,
                             sample_interval=500)
        summary = engine.run(max_writes=50_000)
        assert summary.lifetime_writes > 0
        assert engine.stopped_reason in ("dead-fraction", "max-writes") \
            or engine.stopped_reason.startswith("exhausted")
        assert len(engine.series.points) >= 2

    def test_verify_mode_catches_nothing_on_healthy_run(self):
        controller, _, _, _ = make_reviver_system(
            mean=5_000, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, verify=True,
                             sample_interval=200)
        engine.run(max_writes=1_000)
        engine.verify_all()  # raises on corruption

    def test_verify_mode_through_failures(self):
        controller, chip, _, _ = make_reviver_system(
            mean=200, check_invariants=False, cache=True)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, verify=True,
                             sample_interval=1_000, dead_fraction=0.25)
        engine.run(max_writes=20_000)
        assert chip.failed_count > 0
        engine.verify_all()

    def test_reads_interleaved(self):
        controller, _, _, _ = make_reviver_system(
            mean=5_000, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, read_fraction=2.0,
                             sample_interval=200)
        engine.run(max_writes=500)
        assert controller.stats.reads == pytest.approx(1_000, abs=5)

    def test_rejects_oversized_trace(self):
        controller, _, _, _ = make_reviver_system()
        big = hotspot_distribution(10_000, 3.0, seed=4)
        with pytest.raises(ValueError):
            ExactEngine(controller, big)


class TestFastEngine:
    def test_reviver_outlives_baseline(self):
        revived = make_fast("reviver").run()
        frozen = make_fast("none").run()
        assert revived.lifetime_writes > frozen.lifetime_writes

    def test_batch_size_invariance(self):
        small = make_fast("reviver", batch=1_000).run()
        large = make_fast("reviver", batch=8_000).run()
        ratio = large.lifetime_writes / small.lifetime_writes
        assert 0.85 < ratio < 1.15

    def test_usable_monotone_nonincreasing(self):
        engine = make_fast("reviver")
        engine.run()
        usable = [p.usable for p in engine.series.points]
        assert all(b <= a + 1e-12 for a, b in zip(usable, usable[1:]))

    def test_survival_monotone_nonincreasing(self):
        engine = make_fast("none")
        engine.run()
        survival = [p.survival for p in engine.series.points]
        assert all(b <= a + 1e-12 for a, b in zip(survival, survival[1:]))

    def test_freep_cliff_after_exhaustion(self):
        engine = make_fast("freep", reserve=0.05)
        engine.run()
        assert engine.region.exhausted or not engine.wl.frozen

    def test_freep_reserve_excluded_from_usable(self):
        engine = make_fast("freep", reserve=0.10)
        assert engine.series.points == []
        engine.run()
        assert engine.series.points[0].usable <= 0.91

    def test_reviver_page_accounting(self):
        engine = make_fast("reviver")
        engine.run()
        stats = engine.stats()
        # Every linked block consumed a shadow slot from an acquired page.
        slots = engine.ledger.shadow_slots_per_page * stats["pages_acquired"]
        assert stats["linked_blocks"] <= slots

    def test_stop_on_capacity_flag(self):
        capped = make_fast("none", stop_on_capacity=True).run()
        uncapped_engine = make_fast("none", stop_on_capacity=False)
        uncapped = uncapped_engine.run()
        assert uncapped.lifetime_writes >= capped.lifetime_writes

    def test_max_writes_respected(self):
        engine = make_fast("reviver", mean=100_000)
        engine.config.max_writes = 6_000
        summary = engine.run()
        assert summary.lifetime_writes <= 6_000
        assert engine.stopped_reason == "max-writes"

    def test_nowl_runs(self):
        geometry = AddressGeometry(num_blocks=512)
        endurance = EnduranceModel(num_blocks=512, mean=300, cov=0.2,
                                   max_order=10, seed=3)
        chip = PCMChip(geometry, ECP(endurance, 1))
        trace = hotspot_distribution(512, 6.0, seed=3)
        engine = FastEngine(chip, NoWL(512), trace,
                            FastConfig(recovery="none", batch_writes=2000,
                                       seed=3))
        summary = engine.run()
        assert summary.lifetime_writes > 0


class TestFastEngineRegressions:
    """Dedicated regressions for the three fast-engine bugfixes."""

    def test_victim_pa_with_offset_software_space(self):
        """The victim page must come from ``page_of_pa``, not raw division.

        With a software space parked behind a reserved PA prefix, the raw
        ``pa // blocks_per_page`` page id points outside the pool (the old
        code inspected the wrong page).
        """
        geometry = AddressGeometry(num_blocks=64, block_bytes=64,
                                   page_bytes=512)
        endurance = EnduranceModel(num_blocks=64, mean=300, cov=0.2,
                                   max_order=8, seed=3)
        chip = PCMChip(geometry, ECP(endurance, 1))
        trace = hotspot_distribution(64, 2.0, seed=3)
        engine = FastEngine(chip, NoWL(64), trace,
                            FastConfig(recovery="reviver",
                                       blocks_per_page=8, seed=3))
        # Software window [32, 64): 4 pages of 8 blocks behind a reserved
        # 32-block prefix.
        engine.ospool = PagePool(32, blocks_per_page=8, seed=3, base_pa=32)
        # NoWL inverse is the identity: the failed DA 36 is mapped by PA 36,
        # which lives in (usable) page 0 of the offset window.
        assert engine._victim_pa(36) == 36

    def test_overshoot_collision_reissues_every_stream(self):
        """Two streams sharing a dying final block both get their excess back.

        The old ``final_to_index`` dict kept only the last index, crediting
        the whole clawed-back overshoot to one virtual stream.
        """
        thresholds = np.full(16, 1000)
        thresholds[5] = 10
        geometry = AddressGeometry(num_blocks=16, block_bytes=64,
                                   page_bytes=256)
        chip = PCMChip(geometry, FixedECC(thresholds))
        trace = hotspot_distribution(16, 2.0, seed=1)
        engine = FastEngine(chip, NoWL(16), trace,
                            FastConfig(recovery="none", blocks_per_page=4,
                                       batch_writes=100, seed=1))
        engine._process_failures = lambda newly, migration=False: None
        rebuilds = []

        def rigged_rebuild():
            redirect = np.arange(16, dtype=np.int64)
            if not rebuilds:
                # Round 1: both streams' finals collide on block 5.
                redirect[0] = redirect[1] = 5
            else:
                # Re-issue rounds: the streams separate again.
                redirect[0], redirect[1] = 2, 3
            rebuilds.append(1)
            engine._redirect = redirect

        engine._rebuild_redirect = rigged_rebuild
        rigged_rebuild()
        counts = np.zeros(16, dtype=np.int64)
        counts[0] = counts[1] = 8
        engine._apply_software(counts)
        # Block 5 died at wear 10; the 6 overshoot writes must be split 3/3
        # between the two contributing streams, not 6/0 to the last one.
        assert chip.failed[5] and chip.wear[5] == 10
        assert chip.wear[2] == 3
        assert chip.wear[3] == 3

    def test_overshoot_collision_splits_proportionally(self):
        """Unequal contributions claw back proportional shares."""
        thresholds = np.full(16, 1000)
        thresholds[5] = 10
        geometry = AddressGeometry(num_blocks=16, block_bytes=64,
                                   page_bytes=256)
        chip = PCMChip(geometry, FixedECC(thresholds))
        trace = hotspot_distribution(16, 2.0, seed=1)
        engine = FastEngine(chip, NoWL(16), trace,
                            FastConfig(recovery="none", blocks_per_page=4,
                                       batch_writes=100, seed=1))
        engine._process_failures = lambda newly, migration=False: None
        rebuilds = []

        def rigged_rebuild():
            redirect = np.arange(16, dtype=np.int64)
            if not rebuilds:
                redirect[0] = redirect[1] = 5
            else:
                redirect[0], redirect[1] = 2, 3
            rebuilds.append(1)
            engine._redirect = redirect

        engine._rebuild_redirect = rigged_rebuild
        rigged_rebuild()
        counts = np.zeros(16, dtype=np.int64)
        counts[0], counts[1] = 18, 6  # 24 sent, 14 overshoot
        engine._apply_software(counts)
        assert chip.wear[5] == 10
        # Proportional split of 14: floor gives (10, 3); the deficit of 1
        # goes to the largest contributor.
        assert chip.wear[2] == 11
        assert chip.wear[3] == 3
        # Nothing lost: every issued write landed somewhere.
        assert int(chip.wear.sum()) == 24

    def test_no_duplicate_terminal_sample(self):
        """The series must sample each state exactly once."""
        engine = make_fast("reviver")
        engine.run()
        writes = [p.writes for p in engine.series.points]
        assert writes == sorted(set(writes)), "duplicate sample writes"
        assert engine.series.points[-1] != engine.series.points[-2]

    def test_no_duplicate_sample_on_immediate_stop(self):
        engine = make_fast("reviver", mean=100_000)
        engine.config.max_writes = 0
        engine.run()
        assert len(engine.series.points) == 1


class TestRedirectRebuild:
    """The vectorized redirect rebuild against chain/loop semantics."""

    @staticmethod
    def _reference(num_blocks, links, shadow_of, failed):
        """The pre-vectorization per-key dict walk, as ground truth."""
        redirect = np.arange(num_blocks, dtype=np.int64)
        targets = {da: shadow_of[da] for da in links}
        for da in links:
            seen = set()
            cursor = da
            while cursor in targets and cursor not in seen:
                seen.add(cursor)
                cursor = targets[cursor]
            redirect[da] = cursor if not failed[cursor] else da
        return redirect

    def _engine(self, num_blocks=64):
        geometry = AddressGeometry(num_blocks=num_blocks, block_bytes=64,
                                   page_bytes=512)
        endurance = EnduranceModel(num_blocks=num_blocks, mean=300, cov=0.2,
                                   max_order=8, seed=3)
        chip = PCMChip(geometry, ECP(endurance, 1))
        trace = hotspot_distribution(num_blocks, 2.0, seed=3)
        return FastEngine(chip, NoWL(num_blocks), trace,
                          FastConfig(recovery="reviver", blocks_per_page=8,
                                     seed=3))

    def _rig(self, engine, links, shadow_map, failed_extra=()):
        engine.links = dict(links)
        engine.chip.failed[:] = False
        for da in list(links) + list(failed_extra):
            engine.chip.failed[da] = True
        engine.wl.map_many = lambda vpas: np.asarray(
            [shadow_map[int(v)] for v in vpas], dtype=np.int64)

    def test_chains_sharing_a_shadow(self):
        """Two failed DAs whose chains end on the same healthy block."""
        engine = self._engine()
        # a's shadow currently sits on failed b; b's shadow sits on healthy
        # c — both chains must resolve to c.
        a, b, c = 10, 20, 30
        self._rig(engine, {a: 100, b: 101}, {100: b, 101: c})
        engine._rebuild_redirect()
        assert engine._redirect[a] == c
        assert engine._redirect[b] == c

    def test_loop_stays_unredirected(self):
        engine = self._engine()
        a, b = 10, 20
        self._rig(engine, {a: 100, b: 101}, {100: b, 101: a})
        engine._rebuild_redirect()
        assert engine._redirect[a] == a
        assert engine._redirect[b] == b

    def test_chain_onto_unlinked_dead_block_stays_unredirected(self):
        engine = self._engine()
        a, dead = 10, 40
        self._rig(engine, {a: 100}, {100: dead}, failed_extra=[dead])
        engine._rebuild_redirect()
        assert engine._redirect[a] == a

    def test_fuzz_matches_reference_walk(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            engine = self._engine(num_blocks=96)
            count = int(rng.integers(1, 40))
            failed_das = rng.choice(96, size=count, replace=False)
            vpas = {int(da): 1000 + i
                    for i, da in enumerate(failed_das.tolist())}
            # Shadows point anywhere, including other failed DAs (chains)
            # and occasionally each other (loops).
            shadow_map = {vpas[da]: int(rng.integers(0, 96)) for da in vpas}
            engine.links = dict(vpas)
            engine.chip.failed[:] = False
            engine.chip.failed[failed_das] = True
            shadow_of = {da: shadow_map[vpas[da]] for da in vpas}
            engine.wl.map_many = lambda v, m=shadow_map: np.asarray(
                [m[int(x)] for x in v], dtype=np.int64)
            engine._rebuild_redirect()
            expected = self._reference(96, engine.links, shadow_of,
                                       engine.chip.failed)
            np.testing.assert_array_equal(engine._redirect, expected)


class TestStopReasonParity:
    """Both engines must report end of life through the same StopReason."""

    def test_max_writes_stop_is_identical_across_engines(self):
        controller, _, _, _ = make_reviver_system(
            mean=5_000, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        exact = ExactEngine(controller, trace, sample_interval=200)
        assert exact.stop is None and exact.stopped_reason is None
        exact.run(max_writes=400)
        fast = make_fast("reviver", mean=100_000)
        fast.config.max_writes = 400
        assert fast.stop is None and fast.stopped_reason is None
        fast.run()
        assert exact.stop == fast.stop == StopReason(StopCause.MAX_WRITES)
        assert exact.stopped_reason == fast.stopped_reason == "max-writes"

    def test_dead_fraction_stop_is_identical_across_engines(self):
        controller, _, _, _ = make_reviver_system(
            mean=150, utilization=1.0, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     4.0, seed=6)
        exact = ExactEngine(controller, trace, dead_fraction=0.05,
                            sample_interval=500)
        exact.run(max_writes=200_000)
        # The exact engine has no capacity stop; disable the fast engine's
        # so both can only stop on the failed-block fraction.
        fast = make_fast("reviver", mean=150, dead=0.05,
                         stop_on_capacity=False)
        fast.run()
        assert exact.stop == fast.stop == StopReason(StopCause.DEAD_FRACTION)
        assert exact.stopped_reason == fast.stopped_reason == "dead-fraction"

    def test_end_of_life_reports_share_schema(self):
        controller, _, _, _ = make_reviver_system(
            mean=5_000, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        exact = ExactEngine(controller, trace, sample_interval=200)
        exact.run(max_writes=400)
        fast = make_fast("reviver", mean=100_000)
        fast.config.max_writes = 400
        fast.run()
        exact_report = exact.end_of_life_report().as_dict()
        fast_report = fast.end_of_life_report().as_dict()
        assert set(exact_report) == set(fast_report)
        assert exact_report["stop"] == fast_report["stop"] == "max-writes"
        assert exact_report["total_writes"] == 400
        assert fast_report["total_writes"] == 400


class TestEngineAgreement:
    """The fast engine must reproduce the exact engine's lifetime shape."""

    def test_reviver_lifetimes_agree_within_tolerance(self):
        # Exact path.
        controller, chip, _, _ = make_reviver_system(
            num_blocks=128, mean=200, utilization=1.0,
            check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     4.0, seed=6)
        exact = ExactEngine(controller, trace, dead_fraction=0.25,
                            sample_interval=500)
        exact_summary = exact.run(max_writes=200_000)

        # Fast path over statistically identical hardware/workload.
        geometry = AddressGeometry(num_blocks=128, block_bytes=64,
                                   page_bytes=512)
        endurance = EnduranceModel(num_blocks=128, mean=200, cov=0.25,
                                   max_order=8, seed=11)
        chip2 = PCMChip(geometry, ECP(endurance, 1))
        wl2 = StartGap(128)
        trace2 = hotspot_distribution(127, 4.0, seed=6)
        fast = FastEngine(chip2, wl2, trace2,
                          FastConfig(recovery="reviver", batch_writes=500,
                                     blocks_per_page=8, dead_fraction=0.25,
                                     seed=6))
        fast_summary = fast.run()
        ratio = (fast_summary.lifetime_writes
                 / max(exact_summary.lifetime_writes, 1))
        assert 0.4 < ratio < 2.5, (exact_summary, fast_summary)

    def test_agreement_under_collision_heavy_failures(self):
        """Agreement must hold when redirect chains share shadows.

        Weak endurance plus a very hot trace makes failed blocks pile up
        fast enough that several link chains resolve to the same final
        block in one rebuild — the path the old ``final_to_index`` dict
        silently mis-credited.  The instrumented rebuild asserts the
        collision path actually ran.
        """
        controller, chip, _, _ = make_reviver_system(
            num_blocks=128, mean=150, utilization=1.0,
            check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     6.0, seed=6)
        exact = ExactEngine(controller, trace, dead_fraction=0.3,
                            sample_interval=500)
        exact_summary = exact.run(max_writes=200_000)

        geometry = AddressGeometry(num_blocks=128, block_bytes=64,
                                   page_bytes=512)
        endurance = EnduranceModel(num_blocks=128, mean=150, cov=0.25,
                                   max_order=8, seed=11)
        chip2 = PCMChip(geometry, ECP(endurance, 1))
        fast = FastEngine(chip2, StartGap(128),
                          hotspot_distribution(127, 6.0, seed=6),
                          FastConfig(recovery="reviver", batch_writes=200,
                                     blocks_per_page=8, dead_fraction=0.3,
                                     seed=6))
        rebuild = fast._rebuild_redirect
        collisions = []

        def instrumented():
            rebuild()
            if len(fast.links) < 2:
                return
            links = np.fromiter(fast.links.keys(), dtype=np.int64,
                                count=len(fast.links))
            finals = fast._redirect[links]
            redirected = finals[finals != links]
            if redirected.size > np.unique(redirected).size:
                collisions.append(redirected.size)

        fast._rebuild_redirect = instrumented
        fast_summary = fast.run()
        assert collisions, "run never exercised the shared-shadow path"
        assert len(fast.links) >= 2
        ratio = (fast_summary.lifetime_writes
                 / max(exact_summary.lifetime_writes, 1))
        assert 0.4 < ratio < 2.5, (exact_summary, fast_summary)
