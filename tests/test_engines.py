"""Tests for both simulation engines, including cross-engine agreement."""

import numpy as np
import pytest

from repro.config import StartGapConfig
from repro.ecc import ECP, FreePRegion
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim import ExactEngine, FastConfig, FastEngine
from repro.traces import hotspot_distribution
from repro.wl import NoWL, StartGap

from .conftest import make_reviver_system


def make_fast(recovery: str = "reviver", num_blocks: int = 512,
              mean: float = 300.0, cov_target: float = 6.0,
              psi: int = 10, reserve: float = 0.1, seed: int = 3,
              dead: float = 0.3, batch: int = 2000,
              stop_on_capacity: bool = True):
    geometry = AddressGeometry(num_blocks=num_blocks)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=0.2,
                               max_order=10, seed=seed)
    chip = PCMChip(geometry, ECP(endurance, 1))
    trace = hotspot_distribution(num_blocks, cov_target, seed=seed)
    config = FastConfig(recovery=recovery, freep_reserve=reserve,
                        dead_fraction=dead, batch_writes=batch, seed=seed,
                        stop_on_capacity=stop_on_capacity)
    if recovery == "freep":
        region = FreePRegion(num_blocks, reserve)
        wl = StartGap(region.working_blocks,
                      config=StartGapConfig(psi=psi))
        return FastEngine(chip, wl, trace, config, region=region)
    wl = StartGap(num_blocks, config=StartGapConfig(psi=psi))
    return FastEngine(chip, wl, trace, config)


class TestExactEngine:
    def test_runs_to_dead_fraction(self):
        controller, chip, _, _ = make_reviver_system(
            mean=150, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, dead_fraction=0.2,
                             sample_interval=500)
        summary = engine.run(max_writes=50_000)
        assert summary.lifetime_writes > 0
        assert engine.stopped_reason in ("dead-fraction", "max-writes") \
            or engine.stopped_reason.startswith("exhausted")
        assert len(engine.series.points) >= 2

    def test_verify_mode_catches_nothing_on_healthy_run(self):
        controller, _, _, _ = make_reviver_system(
            mean=5_000, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, verify=True,
                             sample_interval=200)
        engine.run(max_writes=1_000)
        engine.verify_all()  # raises on corruption

    def test_verify_mode_through_failures(self):
        controller, chip, _, _ = make_reviver_system(
            mean=200, check_invariants=False, cache=True)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, verify=True,
                             sample_interval=1_000, dead_fraction=0.25)
        engine.run(max_writes=20_000)
        assert chip.failed_count > 0
        engine.verify_all()

    def test_reads_interleaved(self):
        controller, _, _, _ = make_reviver_system(
            mean=5_000, check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     3.0, seed=4)
        engine = ExactEngine(controller, trace, read_fraction=2.0,
                             sample_interval=200)
        engine.run(max_writes=500)
        assert controller.stats.reads == pytest.approx(1_000, abs=5)

    def test_rejects_oversized_trace(self):
        controller, _, _, _ = make_reviver_system()
        big = hotspot_distribution(10_000, 3.0, seed=4)
        with pytest.raises(ValueError):
            ExactEngine(controller, big)


class TestFastEngine:
    def test_reviver_outlives_baseline(self):
        revived = make_fast("reviver").run()
        frozen = make_fast("none").run()
        assert revived.lifetime_writes > frozen.lifetime_writes

    def test_batch_size_invariance(self):
        small = make_fast("reviver", batch=1_000).run()
        large = make_fast("reviver", batch=8_000).run()
        ratio = large.lifetime_writes / small.lifetime_writes
        assert 0.85 < ratio < 1.15

    def test_usable_monotone_nonincreasing(self):
        engine = make_fast("reviver")
        engine.run()
        usable = [p.usable for p in engine.series.points]
        assert all(b <= a + 1e-12 for a, b in zip(usable, usable[1:]))

    def test_survival_monotone_nonincreasing(self):
        engine = make_fast("none")
        engine.run()
        survival = [p.survival for p in engine.series.points]
        assert all(b <= a + 1e-12 for a, b in zip(survival, survival[1:]))

    def test_freep_cliff_after_exhaustion(self):
        engine = make_fast("freep", reserve=0.05)
        engine.run()
        assert engine.region.exhausted or not engine.wl.frozen

    def test_freep_reserve_excluded_from_usable(self):
        engine = make_fast("freep", reserve=0.10)
        assert engine.series.points == []
        engine.run()
        assert engine.series.points[0].usable <= 0.91

    def test_reviver_page_accounting(self):
        engine = make_fast("reviver")
        engine.run()
        stats = engine.stats()
        # Every linked block consumed a shadow slot from an acquired page.
        slots = engine.ledger.shadow_slots_per_page * stats["pages_acquired"]
        assert stats["linked_blocks"] <= slots

    def test_stop_on_capacity_flag(self):
        capped = make_fast("none", stop_on_capacity=True).run()
        uncapped_engine = make_fast("none", stop_on_capacity=False)
        uncapped = uncapped_engine.run()
        assert uncapped.lifetime_writes >= capped.lifetime_writes

    def test_max_writes_respected(self):
        engine = make_fast("reviver", mean=100_000)
        engine.config.max_writes = 6_000
        summary = engine.run()
        assert summary.lifetime_writes <= 6_000
        assert engine.stopped_reason == "max-writes"

    def test_nowl_runs(self):
        geometry = AddressGeometry(num_blocks=512)
        endurance = EnduranceModel(num_blocks=512, mean=300, cov=0.2,
                                   max_order=10, seed=3)
        chip = PCMChip(geometry, ECP(endurance, 1))
        trace = hotspot_distribution(512, 6.0, seed=3)
        engine = FastEngine(chip, NoWL(512), trace,
                            FastConfig(recovery="none", batch_writes=2000,
                                       seed=3))
        summary = engine.run()
        assert summary.lifetime_writes > 0


class TestEngineAgreement:
    """The fast engine must reproduce the exact engine's lifetime shape."""

    def test_reviver_lifetimes_agree_within_tolerance(self):
        # Exact path.
        controller, chip, _, _ = make_reviver_system(
            num_blocks=128, mean=200, utilization=1.0,
            check_invariants=False)
        trace = hotspot_distribution(controller.ospool.virtual_blocks,
                                     4.0, seed=6)
        exact = ExactEngine(controller, trace, dead_fraction=0.25,
                            sample_interval=500)
        exact_summary = exact.run(max_writes=200_000)

        # Fast path over statistically identical hardware/workload.
        geometry = AddressGeometry(num_blocks=128, block_bytes=64,
                                   page_bytes=512)
        endurance = EnduranceModel(num_blocks=128, mean=200, cov=0.25,
                                   max_order=8, seed=11)
        chip2 = PCMChip(geometry, ECP(endurance, 1))
        wl2 = StartGap(128)
        trace2 = hotspot_distribution(127, 4.0, seed=6)
        fast = FastEngine(chip2, wl2, trace2,
                          FastConfig(recovery="reviver", batch_writes=500,
                                     blocks_per_page=8, dead_fraction=0.25,
                                     seed=6))
        fast_summary = fast.run()
        ratio = (fast_summary.lifetime_writes
                 / max(exact_summary.lifetime_writes, 1))
        assert 0.4 < ratio < 2.5, (exact_summary, fast_summary)
