"""Integration tests for the ReviverController (exact path)."""

import random

import pytest

from repro.errors import CapacityExhaustedError

from .conftest import (
    assert_data_consistent,
    drive_random_writes,
    make_reviver_system,
)


class TestHappyPath:
    def test_write_read_round_trip(self, reviver_system):
        controller, *_ = reviver_system
        controller.service_write(5, tag=123)
        assert controller.service_read(5).tag == 123

    def test_access_costs_one_when_healthy(self, reviver_system):
        controller, *_ = reviver_system
        result = controller.service_write(5, tag=1)
        assert result.pcm_accesses == 1
        assert not result.redirected

    def test_wear_leveling_runs(self, reviver_system):
        controller, _, wear_leveler, _ = reviver_system
        for _ in range(wear_leveler.psi * 3):
            controller.service_write(0, tag=1)
        assert wear_leveler.gap_moves == 3

    def test_migrated_data_still_reads_back(self, reviver_system):
        controller, _, wear_leveler, ospool = reviver_system
        expected = {}
        for vblock in range(ospool.virtual_blocks):
            controller.service_write(vblock, tag=5000 + vblock)
            expected[vblock] = 5000 + vblock
        # Push several full rotations of migrations.
        for step in range(4000):
            controller.service_write(step % 7, tag=9000 + step)
            expected[step % 7] = 9000 + step
        assert wear_leveler.gap_moves > 0
        assert_data_consistent(controller, expected)


class TestFailureHandling:
    def test_first_failure_reports_and_hides(self):
        controller, chip, _, _ = make_reviver_system(mean=120)
        expected = drive_random_writes(controller, 4000)
        assert chip.failed_count > 0
        assert controller.reporter.report_count >= 1
        # Failures beyond the page's spare supply are hidden.
        stats = controller.reviver.stats()
        assert stats["hidden_failures"] >= stats["os_reports"]
        assert_data_consistent(controller, expected)

    def test_redirected_access_costs_two_without_cache(self):
        controller, chip, wear_leveler, _ = make_reviver_system(mean=120)
        drive_random_writes(controller, 4000)
        failed = [da for da in range(chip.num_blocks) if chip.is_failed(da)]
        # Find a software PA currently mapped to a failed block.
        target = None
        for vblock in range(controller.ospool.virtual_blocks):
            pa = controller.ospool.translate(vblock)
            if wear_leveler.map(pa) in failed:
                target = vblock
                break
        if target is None:
            pytest.skip("no software PA currently maps to a failed block")
        result = controller.service_read(target)
        assert result.redirected
        assert result.pcm_accesses == 2

    def test_cache_collapses_redirection_cost(self):
        controller, chip, wear_leveler, _ = make_reviver_system(
            mean=120, cache=True)
        drive_random_writes(controller, 5000)
        if not controller.stats.redirected:
            pytest.skip("no redirections occurred")
        assert controller.cache.hit_rate > 0.3
        assert controller.stats.avg_access_time < 1.5

    def test_victimized_write_reports_healthy_page(self):
        """Run long enough for a migration-detected failure with dry spares;
        the next software write is reported to the OS though it succeeded."""
        controller, chip, _, _ = make_reviver_system(mean=200, seed=13)
        try:
            drive_random_writes(controller, 30_000, seed=3)
        except CapacityExhaustedError:
            pass
        assert controller.reporter.report_count >= 1
        # Not asserting victimized >= 1: it depends on timing; but when it
        # happened it must be flagged in the event log coherently.
        assert (controller.reporter.victimized_count
                == sum(1 for e in controller.reporter.events if e.victimized))

    def test_invariants_hold_throughout(self):
        controller, chip, _, _ = make_reviver_system(mean=150)
        # Invariants are checked after every write by the controller
        # (check_invariants=True); any violation raises mid-drive.
        drive_random_writes(controller, 6000)
        if controller.ospool.usable_pages > 1:
            controller.check_invariants()
        assert chip.failed_count > 0

    def test_consistency_to_heavy_failure(self):
        """The flagship soak test: 40% of the chip dies; data survives."""
        controller, chip, _, _ = make_reviver_system(mean=150, cache=True)
        rng = random.Random(99)
        expected = {}
        space = controller.ospool.virtual_blocks
        try:
            step = 0
            while chip.failed_fraction() < 0.4 and step < 60_000:
                vblock = rng.randrange(space)
                controller.service_write(vblock, tag=step)
                expected[vblock] = step
                step += 1
        except CapacityExhaustedError:
            pass
        assert chip.failed_fraction() > 0.1
        assert_data_consistent(controller, expected)
        assert controller.reviver.resolver.switches >= 0


class TestMetrics:
    def test_usable_fraction_declines_with_acquisitions(self):
        controller, _, _, _ = make_reviver_system(mean=120)
        start = controller.software_usable_fraction()
        drive_random_writes(controller, 4000)
        assert controller.software_usable_fraction() < start

    def test_metadata_writes_accounted(self):
        controller, _, _, _ = make_reviver_system(mean=120)
        drive_random_writes(controller, 4000)
        assert controller.stats.metadata_writes >= \
            2 * len(controller.reviver.links)
