"""Unit tests for the adapted FREE-p remap region."""

import pytest

from repro.ecc import FreePRegion
from repro.errors import CapacityExhaustedError, ConfigurationError


class TestConstruction:
    def test_partitions_space(self):
        region = FreePRegion(1000, 0.10)
        assert region.reserved_blocks == 100
        assert region.working_blocks == 900
        assert region.region_base == 900
        assert region.slots_total == 100
        assert region.slots_remaining == 100

    def test_zero_reserve(self):
        region = FreePRegion(1000, 0.0)
        assert region.exhausted
        assert region.working_blocks == 1000

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            FreePRegion(1000, 1.0)
        with pytest.raises(ConfigurationError):
            FreePRegion(1000, -0.1)

    def test_is_slot(self):
        region = FreePRegion(1000, 0.10)
        assert region.is_slot(900)
        assert region.is_slot(999)
        assert not region.is_slot(899)


class TestLinking:
    def test_link_allocates_sequentially(self):
        region = FreePRegion(1000, 0.10)
        assert region.link(5) == 900
        assert region.link(7) == 901
        assert region.slots_remaining == 98

    def test_resolve_follows_link(self):
        region = FreePRegion(1000, 0.10)
        slot = region.link(5)
        assert region.resolve(5) == slot
        assert region.resolve(6) == 6  # unlinked passes through

    def test_is_linked(self):
        region = FreePRegion(1000, 0.10)
        region.link(5)
        assert region.is_linked(5)
        assert not region.is_linked(6)

    def test_slot_failure_relinks_origin(self):
        """A dying slot hands its duty to a fresh slot, one hop preserved."""
        region = FreePRegion(1000, 0.10)
        slot1 = region.link(5)
        slot2 = region.link(slot1)  # slot1 itself wore out
        assert slot2 != slot1
        assert region.resolve(5) == slot2
        assert region.serving(slot2) == 5
        assert region.serving(slot1) is None

    def test_exhaustion_raises(self):
        region = FreePRegion(100, 0.02)  # 2 slots
        region.link(0)
        region.link(1)
        assert region.exhausted
        with pytest.raises(CapacityExhaustedError):
            region.link(2)

    def test_serving_reverse_map(self):
        region = FreePRegion(1000, 0.10)
        slot = region.link(42)
        assert region.serving(slot) == 42
        assert region.serving(901) is None
