"""Tests for the trace substrate: generators, calibration, attacks, I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traces import (
    BENCHMARKS,
    DistributionTrace,
    RequestStream,
    benchmark_names,
    benchmark_trace,
    birthday_paradox_attack,
    counts_cov,
    distribution_cov,
    hammer_attack,
    hotspot_distribution,
    lognormal_distribution,
    read_trace_file,
    sequential_sweep,
    write_cov,
    write_trace_file,
    zipf_distribution,
    zipf_request_stream,
)
from repro.traces.synthetic import mixture_cov, solve_hot_fraction


class TestCovMath:
    def test_mixture_cov_closed_form(self):
        # cov = (q - h) / sqrt(h (1 - h))
        assert mixture_cov(0.1, 0.9) == pytest.approx(0.8 / np.sqrt(0.09))

    @given(cov=st.floats(min_value=0.5, max_value=20.0),
           q=st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_solver_inverts_formula(self, cov, q):
        try:
            h = solve_hot_fraction(cov, hot_share=q)
        except ConfigurationError:
            return  # unreachable target for this q: legitimate
        assert mixture_cov(h, q) == pytest.approx(cov, rel=1e-6)

    def test_counts_cov(self):
        assert counts_cov(np.array([1, 1, 1, 1])) == 0.0
        assert counts_cov(np.array([0, 0, 0, 4])) == pytest.approx(np.sqrt(3))

    def test_write_cov_from_stream(self):
        addresses = np.array([0, 0, 0, 1])
        assert write_cov(addresses, 4) > 1.0


class TestGenerators:
    @pytest.mark.parametrize("target", [2.0, 5.0, 12.0])
    def test_hotspot_hits_target_cov(self, target):
        trace = hotspot_distribution(4096, target, seed=1)
        assert distribution_cov(trace.probabilities) == \
            pytest.approx(target, rel=0.02)

    @pytest.mark.parametrize("target", [2.0, 5.0, 12.0, 30.0])
    def test_lognormal_hits_target_cov(self, target):
        trace = lognormal_distribution(4096, target, seed=1)
        assert distribution_cov(trace.probabilities) == \
            pytest.approx(target, rel=1e-3)

    def test_lognormal_impossible_cov_rejected(self):
        with pytest.raises(ConfigurationError):
            lognormal_distribution(16, 10.0, seed=1)

    def test_clustered_hot_set_is_contiguous(self):
        trace = hotspot_distribution(1024, 8.0, clustered=True, seed=2)
        hot = np.nonzero(trace.probabilities
                         > 1.5 / 1024)[0]
        # Contiguous modulo wraparound: the sorted gaps have at most one
        # jump greater than 1.
        gaps = np.diff(np.sort(hot))
        assert (gaps > 1).sum() <= 1

    def test_zipf_cov_calibration(self):
        trace = zipf_distribution(2048, target_cov=6.0, seed=3)
        assert distribution_cov(trace.probabilities) == \
            pytest.approx(6.0, rel=1e-3)

    def test_probabilities_normalized(self):
        for trace in (hotspot_distribution(512, 4.0, seed=1),
                      lognormal_distribution(512, 4.0, seed=1),
                      zipf_distribution(512, 1.0, seed=1)):
            assert trace.probabilities.sum() == pytest.approx(1.0)


class TestDistributionTrace:
    def test_next_write_in_range(self):
        trace = hotspot_distribution(256, 4.0, seed=1)
        for _ in range(100):
            assert 0 <= trace.next_write() < 256

    def test_batch_counts_sum(self):
        trace = hotspot_distribution(256, 4.0, seed=1)
        counts = trace.batch_counts(10_000)
        assert counts.sum() == 10_000

    def test_reset_reproduces_stream(self):
        trace = hotspot_distribution(256, 4.0, seed=1)
        first = [trace.next_write() for _ in range(50)]
        trace.reset()
        second = [trace.next_write() for _ in range(50)]
        assert first == second

    def test_restricted_to_folds_mass(self):
        trace = hotspot_distribution(256, 4.0, seed=1)
        folded = trace.restricted_to(100)
        assert folded.virtual_blocks == 100
        assert folded.probabilities.sum() == pytest.approx(1.0)

    def test_restricted_to_noop_when_fits(self):
        trace = hotspot_distribution(256, 4.0, seed=1)
        assert trace.restricted_to(256) is trace

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            DistributionTrace(np.array([0.5, -0.5]))
        with pytest.raises(ConfigurationError):
            DistributionTrace(np.zeros(4))


class TestRequestStream:
    def test_addresses_and_flags_in_range(self):
        stream = zipf_request_stream(256, write_ratio=0.3, seed=5)
        for _ in range(200):
            address, is_write = stream.next_request()
            assert 0 <= address < 256
            assert isinstance(is_write, bool)

    def test_reset_reproduces_the_stream(self):
        stream = zipf_request_stream(256, write_ratio=0.5, seed=5)
        first = [stream.next_request() for _ in range(100)]
        stream.reset()
        second = [stream.next_request() for _ in range(100)]
        assert first == second

    def test_same_seed_same_stream(self):
        draws = []
        for _ in range(2):
            stream = zipf_request_stream(128, write_ratio=0.5, seed=9)
            draws.append([stream.next_request() for _ in range(64)])
        assert draws[0] == draws[1]

    def test_write_ratio_extremes(self):
        all_writes = zipf_request_stream(64, write_ratio=1.0, seed=1)
        assert all(all_writes.next_request()[1] for _ in range(50))
        no_writes = zipf_request_stream(64, write_ratio=0.0, seed=1)
        assert not any(no_writes.next_request()[1] for _ in range(50))

    def test_write_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_request_stream(64, write_ratio=-0.1, seed=1)
        with pytest.raises(ConfigurationError):
            zipf_request_stream(64, write_ratio=1.5, seed=1)

    def test_from_any_distribution_trace(self):
        stream = hotspot_distribution(256, 4.0, seed=2).request_stream()
        assert isinstance(stream, RequestStream)
        address, _ = stream.next_request()
        assert 0 <= address < 256

    def test_skew_shows_in_address_concentration(self):
        # Zipf ranks are spread over a seeded permutation, so skew shows
        # up as concentration on few addresses, not as low-address mass.
        from collections import Counter
        stream = zipf_request_stream(1024, exponent=1.2, seed=4)
        addresses = [stream.next_request()[0] for _ in range(2000)]
        top = Counter(addresses).most_common(1)[0][1]
        assert top > (2000 / 1024) * 10  # far above the uniform share


class TestBenchmarks:
    def test_table1_rows_present(self):
        assert benchmark_names() == [
            "blackscholes", "streamcluster", "swaptions", "mg",
            "fft", "ocean", "radix", "water-spatial"]
        assert BENCHMARKS["mg"].write_cov == 40.87
        assert BENCHMARKS["ocean"].suite == "SPLASH-2"

    @pytest.mark.parametrize("name", ["ocean", "fft", "blackscholes"])
    def test_benchmark_trace_calibrated(self, name):
        trace = benchmark_trace(name, 4096, seed=1)
        assert distribution_cov(trace.probabilities) == \
            pytest.approx(BENCHMARKS[name].write_cov, rel=0.02)

    def test_mg_clamped_at_small_spaces(self):
        trace = benchmark_trace("mg", 256, seed=1)
        cov = distribution_cov(trace.probabilities)
        assert cov <= 0.8 * np.sqrt(255) + 1e-6

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            benchmark_trace("doom", 256)

    def test_lognormal_family_available(self):
        trace = benchmark_trace("ocean", 4096, seed=1, family="lognormal")
        assert distribution_cov(trace.probabilities) == \
            pytest.approx(4.15, rel=1e-3)


class TestAttacks:
    def test_hammer_concentrates_all_mass(self):
        trace = hammer_attack(1024, targets=4, seed=1)
        assert (trace.probabilities > 0).sum() == 4

    def test_birthday_has_background(self):
        trace = birthday_paradox_attack(1024, set_size=16, seed=1)
        assert (trace.probabilities > 0).all()
        assert distribution_cov(trace.probabilities) > 5.0

    def test_sequential_sweep_deterministic(self):
        trace = sequential_sweep(8, stride=3)
        assert [trace.next_write() for _ in range(5)] == [0, 3, 6, 1, 4]

    def test_sequential_batch_counts_uniform(self):
        trace = sequential_sweep(8)
        counts = trace.batch_counts(16)
        assert (counts == 2).all()


class TestFileIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.rptr"
        addresses = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        write_trace_file(path, addresses, virtual_blocks=16)
        trace = read_trace_file(path)
        assert trace.virtual_blocks == 16
        assert [trace.next_write() for _ in range(8)] == addresses.tolist()

    def test_wraps_around(self, tmp_path):
        path = tmp_path / "trace.rptr"
        write_trace_file(path, np.array([1, 2]), virtual_blocks=4)
        trace = read_trace_file(path)
        assert [trace.next_write() for _ in range(5)] == [1, 2, 1, 2, 1]

    def test_batch_counts_match_stream(self, tmp_path):
        path = tmp_path / "trace.rptr"
        write_trace_file(path, np.array([0, 0, 1, 3]), virtual_blocks=4)
        trace = read_trace_file(path)
        counts = trace.batch_counts(8)
        assert counts.tolist() == [4, 2, 0, 2]

    def test_rejects_out_of_range_addresses(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_trace_file(tmp_path / "t", np.array([99]), virtual_blocks=4)

    def test_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(ConfigurationError):
            read_trace_file(path)
