"""The invariant checker must *catch* violations, not just pass clean state.

Each test constructs a corrupted reviver world and asserts the matching
theorem checker raises — the checkers are themselves safety-critical test
infrastructure, so they get negative tests.

Every violation test runs on **both** execution paths (scalar callables
and the numpy sweeps) and must produce the same ``ProtocolError`` message,
so regexes asserted here pin the message parity contract.
"""

import numpy as np
import pytest

from repro.config import ReviverConfig
from repro.errors import ProtocolError
from repro.reviver import InvariantChecker, LinkTable, PageLedger, SparePool


class World:
    """Hand-editable reviver state for violation construction."""

    def __init__(self, blocks: int = 32, vectorized: bool = False) -> None:
        self.blocks = blocks
        self.mapping = {pa: pa for pa in range(blocks)}
        self.failed = set()
        ledger = PageLedger(ReviverConfig(), blocks_per_page=8,
                            block_bytes=64)
        ledger.claim(0, list(range(8)))
        self.links = LinkTable(ledger)
        self.spares = SparePool()
        self.software = list(range(8, 24))
        kwargs = {}
        if vectorized:
            kwargs = dict(map_many_fn=self._map_many,
                          failed_mask_fn=self._failed_mask)
        self.checker = InvariantChecker(
            self.links, self.spares,
            map_fn=lambda pa: self.mapping[pa],
            is_failed=lambda da: da in self.failed,
            software_pas=lambda: self.software,
            failed_blocks=lambda: sorted(self.failed),
            **kwargs)

    def _map_many(self, pas):
        return np.asarray([self.mapping[int(pa)] for pa in pas],
                          dtype=np.int64)

    def _failed_mask(self):
        mask = np.zeros(self.blocks, dtype=bool)
        mask[sorted(self.failed)] = True
        return mask


@pytest.fixture(params=[False, True], ids=["scalar", "vectorized"])
def world(request):
    w = World(vectorized=request.param)
    assert w.checker.vectorized is request.param
    return w


class TestCleanState:
    def test_empty_world_passes(self, world):
        world.checker.check_all()

    def test_one_healthy_link_passes(self, world):
        world.failed.add(10)
        world.mapping[2] = 25          # vpa 2 -> healthy shadow 25
        world.links.link(10, 2)
        world.checker.check_all()

    def test_loop_passes_when_unreachable(self, world):
        world.failed.add(10)
        world.mapping[2] = 10          # PA-DA loop (bijection kept by swap)
        world.mapping[10] = 2
        world.links.link(10, 2)
        world.checker.check_all()


class TestViolations:
    def test_unlinked_failed_block_caught(self, world):
        world.failed.add(10)
        with pytest.raises(ProtocolError, match="no virtual shadow"):
            world.checker.check_link_consistency()

    def test_two_step_chain_caught(self, world):
        world.failed.update({10, 11})
        world.mapping[2] = 11          # d10 -> vpa2 -> failed d11
        world.mapping[3] = 25
        world.links.link(10, 2)
        world.links.link(11, 3)
        with pytest.raises(ProtocolError,
                           match=r"two-step chain: 10 -> PA 2 -> failed 11"):
            world.checker.check_chain_lengths()

    def test_accessible_failed_without_healthy_shadow_caught(self, world):
        world.failed.update({10, 25})
        world.mapping[2] = 25          # shadow itself failed
        world.mapping[5] = 25
        world.links.link(10, 2)
        world.links.link(25, 5)
        # PA 10 is software accessible and maps (identity) onto d10.
        with pytest.raises(ProtocolError, match="lacks a healthy shadow"):
            world.checker.check_theorem1()

    def test_spare_mapping_to_loop_caught(self, world):
        world.failed.add(10)
        world.mapping[2] = 10          # d10 on a loop with vpa 2
        world.links.link(10, 2)
        # Corrupt: a spare PA also claims to map onto the loop block.
        world.spares.add([3])
        world.mapping[3] = 10
        with pytest.raises(ProtocolError, match="loop block"):
            world.checker.check_theorem2()

    def test_spare_indirectly_reaching_failed_caught(self, world):
        world.failed.update({10, 11})
        world.mapping[2] = 11          # d10's "shadow" is failed d11
        world.mapping[4] = 25
        world.links.link(10, 2)
        world.links.link(11, 4)
        world.spares.add([3])
        world.mapping[3] = 10          # spare reaches d10 -> d11 (failed)
        with pytest.raises(ProtocolError, match="indirectly"):
            world.checker.check_theorem2()

    def test_loop_reachable_through_spare_caught(self, world):
        world.failed.add(10)
        world.mapping[2] = 10
        world.links.link(10, 2)
        # Corrupt the spare pool so the loop's own VPA is marked spare.
        world.spares.add([2])
        with pytest.raises(ProtocolError, match="reachable through spare"):
            world.checker.check_theorem3()

    def test_inverse_pointer_mismatch_caught(self, world):
        world.failed.add(10)
        world.mapping[2] = 25
        world.links.link(10, 2)
        # Corrupt the inverse direction behind the table's back.
        world.links._inverse[2] = 99  # repro: allow(LINK-MUT): deliberate corruption under test
        with pytest.raises(ProtocolError,
                           match="inverse pointer of PA 2 names 99"):
            world.checker.check_link_consistency()


class TestStandaloneUnlinked:
    """Each check_* method raises ProtocolError — never TypeError — when a
    failed block has no link (the vpa-is-None case from PR 1's bug class)."""

    def test_check_chain_lengths_unlinked(self, world):
        world.failed.add(10)
        with pytest.raises(ProtocolError, match="no virtual shadow"):
            world.checker.check_chain_lengths()

    def test_check_theorem3_unlinked(self, world):
        world.failed.add(10)
        with pytest.raises(ProtocolError, match="no virtual shadow"):
            world.checker.check_theorem3()

    def test_check_theorem1_unlinked(self, world):
        world.failed.add(10)   # PA 10 is software-accessible, identity map
        with pytest.raises(ProtocolError, match="unlinked"):
            world.checker.check_theorem1()

    def test_check_theorem2_unlinked(self, world):
        world.failed.add(10)
        world.spares.add([3])
        world.mapping[3] = 10
        with pytest.raises(ProtocolError, match="unlinked"):
            world.checker.check_theorem2()

    def test_no_type_error_escapes(self, world):
        world.failed.add(10)
        for check in (world.checker.check_all,
                      world.checker.check_link_consistency,
                      world.checker.check_chain_lengths,
                      world.checker.check_theorem1,
                      world.checker.check_theorem3):
            with pytest.raises(ProtocolError):
                check()


class TestMessageParity:
    """Scalar and vectorized paths raise byte-identical messages."""

    @staticmethod
    def _corrupt(world):
        world.failed.update({10, 11})
        world.mapping[2] = 11
        world.mapping[3] = 25
        world.links.link(10, 2)
        world.links.link(11, 3)

    def test_two_step_chain_messages_match(self):
        messages = []
        for vectorized in (False, True):
            w = World(vectorized=vectorized)
            self._corrupt(w)
            with pytest.raises(ProtocolError) as err:
                w.checker.check_chain_lengths()
            messages.append(str(err.value))
        assert messages[0] == messages[1]

    def test_theorem1_messages_match(self):
        messages = []
        for vectorized in (False, True):
            w = World(vectorized=vectorized)
            w.failed.update({10, 25})
            w.mapping[2] = 25
            w.mapping[5] = 25
            w.links.link(10, 2)
            w.links.link(25, 5)
            with pytest.raises(ProtocolError) as err:
                w.checker.check_theorem1()
            messages.append(str(err.value))
        assert messages[0] == messages[1]


class TestFastEngineInvariants:
    """The fast engine runs its invariant subset at sampling points."""

    def test_reviver_run_with_checks_enabled(self):
        from .test_engines import make_fast
        engine = make_fast(num_blocks=256, batch=1000)
        engine.config.reviver = ReviverConfig(check_invariants=True)
        engine.run()
        assert engine.total_writes > 0
        # The terminal state still satisfies the functional-chain subset.
        engine.check_invariants()

    def test_check_invariants_catches_corruption(self):
        from .test_engines import make_fast
        engine = make_fast(num_blocks=256, batch=1000)
        engine.run()
        if not engine.links:
            pytest.skip("run produced no failures to corrupt")
        da = next(iter(engine.links))
        del engine.links[da]
        with pytest.raises(ProtocolError, match="no virtual shadow"):
            engine.check_invariants()
