"""The invariant checker must *catch* violations, not just pass clean state.

Each test constructs a corrupted reviver world and asserts the matching
theorem checker raises — the checkers are themselves safety-critical test
infrastructure, so they get negative tests.
"""

import pytest

from repro.config import ReviverConfig
from repro.errors import ProtocolError
from repro.reviver import InvariantChecker, LinkTable, PageLedger, SparePool


class World:
    """Hand-editable reviver state for violation construction."""

    def __init__(self, blocks: int = 32) -> None:
        self.mapping = {pa: pa for pa in range(blocks)}
        self.failed = set()
        ledger = PageLedger(ReviverConfig(), blocks_per_page=8,
                            block_bytes=64)
        ledger.claim(0, list(range(8)))
        self.links = LinkTable(ledger)
        self.spares = SparePool()
        self.software = list(range(8, 24))
        self.checker = InvariantChecker(
            self.links, self.spares,
            map_fn=lambda pa: self.mapping[pa],
            is_failed=lambda da: da in self.failed,
            software_pas=lambda: self.software,
            failed_blocks=lambda: sorted(self.failed))


class TestCleanState:
    def test_empty_world_passes(self):
        World().checker.check_all()

    def test_one_healthy_link_passes(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 25          # vpa 2 -> healthy shadow 25
        world.links.link(10, 2)
        world.checker.check_all()

    def test_loop_passes_when_unreachable(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 10          # PA-DA loop (bijection kept by swap)
        world.mapping[10] = 2
        world.links.link(10, 2)
        world.checker.check_all()


class TestViolations:
    def test_unlinked_failed_block_caught(self):
        world = World()
        world.failed.add(10)
        with pytest.raises(ProtocolError, match="no virtual shadow"):
            world.checker.check_link_consistency()

    def test_two_step_chain_caught(self):
        world = World()
        world.failed.update({10, 11})
        world.mapping[2] = 11          # d10 -> vpa2 -> failed d11
        world.mapping[3] = 25
        world.links.link(10, 2)
        world.links.link(11, 3)
        with pytest.raises(ProtocolError, match="two-step chain"):
            world.checker.check_chain_lengths()

    def test_accessible_failed_without_healthy_shadow_caught(self):
        world = World()
        world.failed.update({10, 25})
        world.mapping[2] = 25          # shadow itself failed
        world.mapping[5] = 25
        world.links.link(10, 2)
        world.links.link(25, 5)
        # PA 10 is software accessible and maps (identity) onto d10.
        with pytest.raises(ProtocolError):
            world.checker.check_theorem1()

    def test_spare_mapping_to_loop_caught(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 10          # d10 on a loop with vpa 2
        world.links.link(10, 2)
        # Corrupt: a spare PA also claims to map onto the loop block.
        world.spares.add([3])
        world.mapping[3] = 10
        with pytest.raises(ProtocolError, match="loop block"):
            world.checker.check_theorem2()

    def test_spare_indirectly_reaching_failed_caught(self):
        world = World()
        world.failed.update({10, 11})
        world.mapping[2] = 11          # d10's "shadow" is failed d11
        world.mapping[4] = 25
        world.links.link(10, 2)
        world.links.link(11, 4)
        world.spares.add([3])
        world.mapping[3] = 10          # spare reaches d10 -> d11 (failed)
        with pytest.raises(ProtocolError, match="indirectly"):
            world.checker.check_theorem2()

    def test_loop_reachable_through_spare_caught(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 10
        world.links.link(10, 2)
        # Corrupt the spare pool so the loop's own VPA is marked spare.
        world.spares.add([2])
        with pytest.raises(ProtocolError, match="reachable through spare"):
            world.checker.check_theorem3()

    def test_inverse_pointer_mismatch_caught(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 25
        world.links.link(10, 2)
        # Corrupt the inverse direction behind the table's back.
        world.links._inverse[2] = 99
        with pytest.raises(ProtocolError, match="inverse pointer"):
            world.checker.check_link_consistency()
