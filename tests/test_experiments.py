"""Tests for the experiment harness: every table/figure runner at tiny scale,
with shape assertions matching the paper's qualitative claims."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    attacks,
    fig5,
    fig6,
    fig7,
    fig8,
    fig_array,
    fig_wa,
    table1,
    table2,
)
from repro.experiments.__main__ import build_parser, main
from repro.experiments.common import (
    SYSTEM_CONFIGS,
    build_engine,
    build_lls_engine,
    scaled_parameters,
)
from repro.experiments.report import (
    format_number,
    format_percent,
    format_series,
    format_table,
    sparkline,
)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_sparkline_range(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_clamps(self):
        assert sparkline([-1.0, 2.0]) == " @"

    def test_format_series_empty(self):
        assert "(empty)" in format_series("x", [], [])

    def test_number_and_percent(self):
        assert format_number(1234567) == "1,234,567"
        assert format_percent(0.125) == "12.5%"


class TestCommon:
    def test_scaled_parameters(self):
        params = scaled_parameters("tiny")
        assert params.num_blocks == 1024
        with pytest.raises(Exception):
            scaled_parameters("huge")

    def test_all_system_configs_buildable(self):
        params = scaled_parameters("tiny")
        for name, kwargs in SYSTEM_CONFIGS.items():
            engine = build_engine(params, "ocean", max_writes=1_000,
                                  **kwargs)
            summary = engine.run()
            assert summary.lifetime_writes >= 0, name

    def test_lls_engine_buildable(self):
        params = scaled_parameters("tiny")
        engine = build_lls_engine(params, "ocean", max_writes=1_000)
        engine.run()


class TestTable1:
    def test_covs_match_paper_where_realizable(self):
        result = table1.run(scale="small", sample_writes=300_000)
        data = table1.as_dict(result)
        for name, row in data.items():
            if row["paper"] < 20:  # mg may be clamped at small scales
                assert row["calibrated"] == pytest.approx(row["paper"],
                                                          rel=0.03), name

    def test_render_contains_all_benchmarks(self):
        result = table1.run(scale="tiny", sample_writes=100_000)
        text = table1.render(result)
        for name in ("ocean", "mg", "blackscholes"):
            assert name in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(scale="tiny",
                        benchmarks=["ocean", "fft", "mg"])

    def test_wlr_always_wins(self, result):
        for row in result.rows:
            assert row.wlr_lifetime > row.sg_lifetime, row.benchmark

    def test_baseline_anticorrelated_with_cov(self, result):
        lifetimes = [r.sg_lifetime for r in result.rows]  # CoV-sorted
        assert lifetimes[0] >= lifetimes[-1]

    def test_wlr_flattens_variation(self, result):
        sg = [r.sg_lifetime for r in result.rows]
        wlr = [r.wlr_lifetime for r in result.rows]
        assert (max(sg) / max(min(sg), 1)) > (max(wlr) / max(min(wlr), 1))

    def test_render(self, result):
        assert "Figure 5" in fig5.render(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(scale="tiny", benchmarks=["ocean"],
                        systems=["ECP6", "ECP6-SG", "ECP6-SG-WLR",
                                 "PAYG-SG-WLR"])

    def test_wlr_curve_dominates(self, result):
        milestones = fig6.as_dict(result)["ocean"]
        assert milestones["ECP6-SG-WLR"] > milestones["ECP6-SG"]
        assert milestones["ECP6-SG-WLR"] > milestones["ECP6"]

    def test_render(self, result):
        text = fig6.render(result)
        assert "Figure 6" in text
        assert "ECP6-SG-WLR" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(scale="tiny", benchmarks=["mg"],
                        reserves=[0.05, 0.15])

    def test_wlr_dominates_freep(self, result):
        milestones = fig7.as_dict(result)["mg"]
        wlr = milestones["WL-Reviver"]
        assert all(wlr >= value for key, value in milestones.items()
                   if key != "WL-Reviver" and value is not None)

    def test_bigger_reserve_postpones_cliff_for_mg(self, result):
        milestones = fig7.as_dict(result)["mg"]
        assert milestones["FREE-p 15%"] > milestones["FREE-p 5%"]

    def test_wlr_starts_at_full_capacity(self, result):
        for curve in result.curves:
            if curve.reserve is None:
                assert curve.series.points[0].usable == pytest.approx(1.0)
            else:
                assert curve.series.points[0].usable == pytest.approx(
                    1.0 - curve.reserve, abs=0.02)

    def test_render(self, result):
        assert "Figure 7" in fig7.render(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(scale="tiny", benchmarks=["ocean"])

    def test_ordering_wlr_lls_baseline(self, result):
        milestones = fig8.as_dict(result)["ocean"]
        assert milestones["WL-Reviver"] > milestones["LLS"]
        assert milestones["LLS"] > milestones["ECP6-SG"]

    def test_render(self, result):
        assert "Figure 8" in fig8.render(result)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(scale="tiny", benchmarks=["ocean"],
                          ratios=[0.10, 0.30], samples=20_000)

    def test_access_times_near_one_with_cache(self, result):
        for row in result.rows:
            assert 1.0 <= row.avg_access_time < 1.2, row

    def test_wlr_more_usable_than_lls(self, result):
        data = table2.as_dict(result)
        for ratio, systems in data.items():
            wlr = systems["WL-Reviver"]["ocean"]["usable"]
            lls = systems["LLS"]["ocean"]["usable"]
            assert wlr >= lls, ratio

    def test_usable_declines_with_failures(self, result):
        data = table2.as_dict(result)
        assert data["10%"]["WL-Reviver"]["ocean"]["usable"] > \
            data["30%"]["WL-Reviver"]["ocean"]["usable"]

    def test_render(self, result):
        assert "Table II" in table2.render(result)


class TestAttacks:
    @pytest.fixture(scope="class")
    def result(self):
        return attacks.run(scale="tiny")

    def test_revival_beats_frozen_under_every_attack(self, result):
        for row in result.rows:
            assert row.revived_lifetime > row.frozen_lifetime, row.attack
            assert row.gain >= 0.5, row.attack

    def test_render_and_dict(self, result):
        text = attacks.render(result)
        assert "Attack resilience" in text
        data = attacks.as_dict(result)
        assert "hammer-8" in data


class TestFigArray:
    @pytest.fixture(scope="class")
    def result(self):
        return fig_array.run(scale="tiny", benchmarks=["attack"],
                             shard_counts=[1, 2], seed=3)

    def test_degraded_arrays_run_to_exhaustion(self, result):
        table = fig_array.as_dict(result)["attack"]
        for shards in (1, 2):
            row = table[f"{shards}x"]
            assert row["dead_shards"] == shards
            assert row["stop"].startswith("exhausted")
            assert row["total_writes"] > 0
            assert row["writes_to_50pct_usable"] is not None

    def test_render(self, result):
        text = fig_array.render(result)
        assert "Array scaling" in text
        assert "2x shards" in text

    def test_workload_filter_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            fig_array.run(scale="tiny", benchmarks=["no-such-workload"])


class TestFigWA:
    @pytest.fixture(scope="class")
    def result(self):
        return fig_wa.run(scale="tiny", benchmarks=["uniform", "zipf"],
                          policies=["greedy"], seed=3)

    def test_amplification_is_accounted(self, result):
        table = fig_wa.as_dict(result)
        for workload in ("uniform", "zipf"):
            row = table[workload]["greedy"]
            assert row["wa_ratio"] > 1.0
            assert row["wa_ratio"] == pytest.approx(
                (row["host_writes"] + row["gc_writes"])
                / row["host_writes"])
            assert row["erases"] > 0

    def test_uniform_amplifies_more_than_zipf(self, result):
        # Skewed overwrites self-invalidate hot blocks; uniform traffic
        # leaves victims half-valid and pays more relocation.
        table = fig_wa.as_dict(result)
        assert table["uniform"]["greedy"]["wa_ratio"] > \
            table["zipf"]["greedy"]["wa_ratio"]

    def test_reviver_still_wins_under_amplification(self, result):
        for row in result.rows:
            assert row.lifetime_reviver >= row.lifetime_none
            assert row.gain >= 1.0

    def test_render_and_dict(self, result):
        text = fig_wa.render(result)
        assert "write amplification" in text
        assert "greedy" in text
        assert set(fig_wa.as_dict(result)) == {"uniform", "zipf"}

    def test_bad_policy_is_rejected(self):
        with pytest.raises(ConfigurationError):
            fig_wa.run(scale="tiny", benchmarks=["uniform"],
                       policies=["lru"], seed=3)


class TestCLI:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--scale", "tiny"])
        assert args.experiment == "table1"

    def test_main_runs_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "fig5", "fig6", "fig7",
                                    "fig8", "table2", "attacks",
                                    "fig_array", "fig_wa", "fig_elastic"}
