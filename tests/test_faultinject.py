"""The fault-injection subsystem: DSL, hooks, crash recovery, campaigns.

These tests drive injection exclusively through the public
:class:`~repro.faultinject.ScheduleDriver` API (the FAULT-HOOK rule bans
hook mutation elsewhere in ``src``); the driver is attached to a minimal
engine stand-in so each scenario can step the controller by hand.
"""

import random
from types import SimpleNamespace

import pytest

from repro.errors import (CapacityExhaustedError, ConfigurationError,
                          ProtocolError, SimulatedCrash, UncorrectableError)
from repro.faultinject import (ACTION_KINDS, CRASH_SITES, ChipHooks,
                               ControllerHooks, FaultAction, FaultSchedule,
                               ScheduleDriver, for_shard, random_schedule,
                               shard_death_schedule, shard_stall_schedule)
from repro.faultinject.campaign import (RATIO_BAND, _schedule_horizon,
                                        reproduce, run_cell, summarize)
from repro.mc.controller import READ_RETRY_LIMIT
from repro.reviver.registers import SparePool

from .conftest import (assert_data_consistent, drive_random_writes,
                       make_reviver_system)


def attach(controller, schedule):
    """Attach a driver to a bare controller via an engine stand-in."""
    shim = SimpleNamespace(controller=controller)
    return ScheduleDriver(schedule).attach_exact(shim)


def drive_injected(controller, driver, steps, seed=7, tag_base=1_000_000):
    """Random tagged writes with per-write polling and crash handling."""
    rng = random.Random(seed)
    expected = {}
    space = controller.ospool.virtual_blocks
    for step in range(steps):
        driver.poll(controller.writes)
        vblock = rng.randrange(space)
        tag = tag_base + step
        try:
            controller.service_write(vblock, tag=tag)
        except SimulatedCrash as crash:
            controller.lost_vblocks.add(vblock)
            controller.crash_and_recover(crash)
            continue
        except CapacityExhaustedError:
            break
        expected[vblock] = tag
    return expected


def schedule_of(*actions, name="test"):
    return FaultSchedule(actions=tuple(actions), name=name)


# --------------------------------------------------------------------- DSL


class TestScheduleDSL:
    def test_random_schedule_is_deterministic(self):
        a = random_schedule(17, 96, 4_000)
        b = random_schedule(17, 96, 4_000)
        assert a.to_json() == b.to_json()
        assert a.to_json() != random_schedule(18, 96, 4_000).to_json()

    def test_json_round_trip_is_byte_identical(self):
        schedule = random_schedule(3, 128, 2_000)
        parsed = FaultSchedule.from_json(schedule.to_json())
        assert parsed.to_json() == schedule.to_json()
        assert parsed.seed == 3

    def test_hand_built_round_trip_preserves_every_field(self):
        schedule = schedule_of(
            FaultAction("endurance-burst", at_write=7, das=(3, 9), margin=2),
            FaultAction("crash", at_write=5, site="mid-migration"),
            FaultAction("read-error", at_write=1, da=40),
            FaultAction("exhaust-spares", at_write=2))
        parsed = FaultSchedule.from_json(schedule.to_json())
        assert parsed.sorted_actions() == schedule.sorted_actions()

    def test_sorted_actions_order_by_write_then_kind(self):
        schedule = schedule_of(
            FaultAction("read-error", at_write=10, da=1),
            FaultAction("fail-block", at_write=10, das=(2,)),
            FaultAction("exhaust-spares", at_write=4))
        kinds = [a.kind for a in schedule.sorted_actions()]
        assert kinds == ["exhaust-spares", "fail-block", "read-error"]

    def test_any_three_consecutive_seeds_cover_every_crash_site(self):
        for base in (0, 7, 100):
            sites = {a.site
                     for seed in range(base, base + 3)
                     for a in random_schedule(seed, 96, 2_000).actions
                     if a.kind == "crash"}
            assert sites == set(CRASH_SITES)

    @pytest.mark.parametrize("bad", [
        dict(kind="meteor-strike", at_write=1),
        dict(kind="fail-block", at_write=-1, das=(1,)),
        dict(kind="fail-block", at_write=1),
        dict(kind="crash", at_write=1, site="during-lunch"),
        dict(kind="crash", at_write=1),
        dict(kind="read-error", at_write=1),
        dict(kind="endurance-burst", at_write=1, das=(1,), margin=0),
    ])
    def test_invalid_actions_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FaultAction(**bad)

    def test_every_action_kind_is_constructible(self):
        samples = {
            "fail-block": dict(das=(1,)),
            "endurance-burst": dict(das=(1, 2)),
            "exhaust-spares": {},
            "crash": dict(site=CRASH_SITES[0]),
            "read-error": dict(da=1),
            "shard-stall": dict(requests=3, shard=0),
        }
        assert set(samples) == set(ACTION_KINDS)
        for kind, extra in samples.items():
            FaultAction(kind, at_write=1, **extra)


class TestShardStall:
    """The transient ``shard-stall`` action (serving-layer brownout)."""

    def test_round_trips_through_json(self):
        schedule = schedule_of(
            FaultAction("shard-stall", at_write=500, requests=4, shard=1))
        parsed = FaultSchedule.from_json(schedule.to_json())
        assert parsed == schedule
        assert parsed.actions[0].requests == 4

    def test_request_count_is_validated(self):
        with pytest.raises(ConfigurationError, match="requests >= 1"):
            FaultAction("shard-stall", at_write=0, shard=0)
        with pytest.raises(ConfigurationError, match="requests must be"):
            FaultAction("fail-block", at_write=0, das=(1,), requests=-1)

    def test_builder_projects_onto_its_shard_only(self):
        schedule = shard_stall_schedule(1, at_write=200, requests=3)
        mine = for_shard(schedule, 1).actions
        assert len(mine) == 1 and mine[0].shard is None
        assert mine[0].requests == 3
        assert for_shard(schedule, 0).actions == ()

    def test_engine_driver_treats_it_as_a_no_op(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("shard-stall", at_write=0, requests=2)))
        thresholds_before = chip.ecc.thresholds.copy()
        driver.poll(0)
        # Recorded as applied (the serving layer interprets it), but the
        # device underneath is untouched.
        assert [a.kind for a in driver.applied] == ["shard-stall"]
        assert (chip.ecc.thresholds == thresholds_before).all()
        assert driver.spares_drained == 0


class TestShardSchedules:
    """Per-shard targeting for array campaigns."""

    def test_shard_tag_round_trips(self):
        schedule = schedule_of(
            FaultAction("fail-block", at_write=5, das=(1, 2), shard=2),
            FaultAction("crash", at_write=3, site=CRASH_SITES[0]))
        parsed = FaultSchedule.from_json(schedule.to_json())
        assert parsed.sorted_actions() == schedule.sorted_actions()
        shards = [a.shard for a in parsed.sorted_actions()]
        assert shards == [None, 2]

    def test_untagged_actions_serialize_without_the_field(self):
        action = FaultAction("read-error", at_write=1, da=4)
        assert "shard" not in action.as_dict()
        tagged = FaultAction("read-error", at_write=1, da=4, shard=0)
        assert tagged.as_dict()["shard"] == 0

    def test_negative_shard_is_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultAction("read-error", at_write=1, da=4, shard=-1)

    def test_for_shard_projects_and_strips_the_tag(self):
        schedule = schedule_of(
            FaultAction("fail-block", at_write=5, das=(1,), shard=0),
            FaultAction("read-error", at_write=2, da=3, shard=1),
            FaultAction("crash", at_write=9, site=CRASH_SITES[0]))
        mine = for_shard(schedule, 1)
        assert [(a.kind, a.shard) for a in mine.sorted_actions()] == [
            ("read-error", None), ("crash", None)]
        assert mine.name.endswith("/s1")
        # Broadcast actions reach every shard; tagged ones only theirs.
        assert [a.kind for a in for_shard(schedule, 2).sorted_actions()] \
            == ["crash"]

    def test_shard_death_schedule_fails_every_block(self):
        schedule = shard_death_schedule(3, at_write=4_000, num_blocks=64)
        (action,) = schedule.sorted_actions()
        assert action.kind == "fail-block"
        assert action.shard == 3
        assert action.das == tuple(range(64))
        projected = for_shard(schedule, 3)
        assert len(projected.sorted_actions()) == 1
        assert for_shard(schedule, 0).sorted_actions() == ()


# ------------------------------------------------------------------- hooks


class TestHooks:
    def test_hooks_disabled_by_default(self):
        controller, chip, _, _ = make_reviver_system()
        assert controller.inject is None
        assert chip.inject is None

    def test_arm_crash_rejects_unknown_site(self):
        hooks = ControllerHooks()
        with pytest.raises(ProtocolError):
            hooks.arm_crash("unknown-site")

    def test_crash_point_fires_exactly_once_per_arm(self):
        hooks = ControllerHooks()
        hooks.arm_crash("mid-migration")
        with pytest.raises(SimulatedCrash) as excinfo:
            hooks.crash_point("mid-migration", pa=9)
        assert excinfo.value.site == "mid-migration"
        assert excinfo.value.pa == 9
        hooks.crash_point("mid-migration", pa=9)  # disarmed: no raise
        assert hooks.fired == ["mid-migration"]

    def test_chip_hooks_deliver_each_armed_error_once(self):
        hooks = ChipHooks()
        hooks.arm_read_error(4, count=2)
        for _ in range(2):
            with pytest.raises(UncorrectableError):
                hooks.on_read(4)
        hooks.on_read(4)  # exhausted: clean read
        hooks.on_read(5)  # never armed
        assert hooks.delivered == 2


# -------------------------------------------------------- forced failures


class TestForcedFailures:
    def test_clamp_forces_failure_through_normal_machinery(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        expected = drive_random_writes(controller, 50)
        vblock = next(iter(expected))
        da = wl.map(ospool.translate(vblock))
        driver = attach(controller, schedule_of(
            FaultAction("fail-block", at_write=0, das=(da,))))
        driver.poll(controller.writes)
        controller.service_write(vblock, tag=42)
        assert chip.is_failed(da)
        assert controller.reviver.links.vpa_of(da) is not None
        assert controller.service_read(vblock).tag == 42
        controller.check_invariants()
        assert driver.applied[0].kind == "fail-block"

    def test_clamp_skips_already_failed_blocks(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        expected = drive_random_writes(controller, 50)
        vblock = next(iter(expected))
        da = wl.map(ospool.translate(vblock))
        driver = attach(controller, schedule_of(
            FaultAction("fail-block", at_write=0, das=(da,))))
        driver.poll(controller.writes)
        controller.service_write(vblock, tag=1)
        assert chip.is_failed(da)
        wear_after = int(chip.wear[da])
        # Re-applying a clamp to the now-failed block must not touch it.
        driver._clamp((da,), margin=1)
        assert int(chip.wear[da]) == wear_after
        assert chip.ecc.thresholds[da] <= wear_after


# ------------------------------------------------------ transient reads


class TestTransientReadErrors:
    def _system_with_written_block(self, **controller_kwargs):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False, **controller_kwargs)
        expected = drive_random_writes(controller, 50)
        for vblock, tag in expected.items():
            da = wl.map(ospool.translate(vblock))
            if not chip.is_failed(da):
                return controller, vblock, tag, da
        pytest.fail("no healthy written block found")

    def test_transient_error_is_absorbed_by_retry(self):
        controller, vblock, tag, da = self._system_with_written_block()
        driver = attach(controller, schedule_of(
            FaultAction("read-error", at_write=0, da=da)))
        driver.poll(controller.writes)
        result = controller.service_read(vblock)
        assert result.tag == tag
        assert controller.transient_read_errors == 1
        assert driver.chip_hooks.delivered == 1

    def test_retry_limit_turns_persistent_error_into_protocol_error(self):
        controller, vblock, tag, da = self._system_with_written_block()
        driver = attach(controller, schedule_of(
            FaultAction("read-error", at_write=0, da=da)))
        # Arm one error beyond the retry budget: the read must give up.
        driver.chip_hooks.arm_read_error(da, count=READ_RETRY_LIMIT + 1)
        with pytest.raises(ProtocolError):
            controller.service_read(vblock)
        assert controller.transient_read_errors == READ_RETRY_LIMIT

    def test_exhausted_retries_raise_structured_error(self):
        from repro.errors import ReadRetriesExhausted

        controller, vblock, tag, da = self._system_with_written_block()
        driver = attach(controller, schedule_of(
            FaultAction("read-error", at_write=0, da=da)))
        driver.chip_hooks.arm_read_error(da, count=READ_RETRY_LIMIT + 1)
        # Pre-fix this surfaced as a bare ProtocolError whose only payload
        # was message text; the serving layer's retry/backoff path needs
        # the address and spent budget as structured fields.
        with pytest.raises(ReadRetriesExhausted) as excinfo:
            controller.service_read(vblock)
        assert excinfo.value.da == da
        assert excinfo.value.attempts == READ_RETRY_LIMIT

    def test_read_retry_budget_is_configurable(self):
        from repro.errors import ReadRetriesExhausted

        controller, vblock, tag, da = self._system_with_written_block(
            read_retry_limit=2)
        driver = attach(controller, schedule_of(
            FaultAction("read-error", at_write=0, da=da)))
        driver.chip_hooks.arm_read_error(da, count=3)
        with pytest.raises(ReadRetriesExhausted) as excinfo:
            controller.service_read(vblock)
        assert excinfo.value.attempts == 2
        assert controller.transient_read_errors == 2

    def test_retry_budget_below_one_is_rejected(self):
        with pytest.raises(ConfigurationError, match="read_retry_limit"):
            make_reviver_system(check_invariants=False, read_retry_limit=0)


# ------------------------------------------------------- crash recovery


class TestCrashRecovery:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_crash_and_recovery_round_trip(self, site):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("crash", at_write=0, site=site),
            FaultAction("fail-block", at_write=40, das=tuple(range(24)))))
        expected = drive_injected(controller, driver, 1_200)
        assert driver.controller_hooks.fired == [site]
        assert controller.crashes_recovered == 1
        assert controller.reviver.recoveries == 1
        controller.check_invariants()
        assert_data_consistent(controller, expected)

    @pytest.mark.parametrize("site", ["after-link-write",
                                      "before-inverse-write"])
    def test_torn_metadata_write_is_redone_on_recovery(self, site):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("crash", at_write=0, site=site),
            FaultAction("fail-block", at_write=40, das=tuple(range(24)))))
        drive_injected(controller, driver, 800)
        assert driver.controller_hooks.fired == [site]
        # The interrupted pointer/inverse pair left exactly one cell in the
        # PCM; the recovery scan must detect and complete it.
        assert controller.reviver.recovery_redo_writes >= 1
        controller.check_invariants()

    def test_clean_crash_rebuilds_links_without_redo(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("fail-block", at_write=40, das=tuple(range(16)))))
        expected = drive_injected(controller, driver, 700)
        reviver = controller.reviver
        assert len(reviver.links) >= 2, "scenario needs established links"
        before_links = sorted(zip(*(a.tolist()
                                    for a in reviver.links.as_arrays())))
        before_spares = set(reviver.spares.peek_all())
        controller.crash_and_recover()
        after_links = sorted(zip(*(a.tolist()
                                   for a in reviver.links.as_arrays())))
        assert after_links == before_links
        assert set(reviver.spares.peek_all()) == before_spares
        assert reviver.recovery_redo_writes == 0
        assert controller.crashes_recovered == 1
        # Service continues seamlessly on the rebuilt state.
        expected.update(drive_injected(controller, driver, 200,
                                       seed=8, tag_base=2_000_000))
        controller.check_invariants()
        assert_data_consistent(controller, expected)

    def test_repeated_crashes_survive(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("fail-block", at_write=40, das=tuple(range(16)))))
        expected = drive_injected(controller, driver, 500)
        for _ in range(3):
            controller.crash_and_recover()
        assert controller.crashes_recovered == 3
        assert controller.reviver.recoveries == 3
        controller.check_invariants()
        assert_data_consistent(controller, expected)


# -------------------------------------------------- spare-pool exhaustion


class TestSpareExhaustion:
    def test_take_and_take_specific_guard_empty_pool(self):
        pool = SparePool()
        with pytest.raises(CapacityExhaustedError):
            pool.take()
        with pytest.raises(CapacityExhaustedError):
            pool.take_specific(0)

    def test_take_specific_rejects_non_spare_pa(self):
        pool = SparePool()
        pool.add([5, 6])
        with pytest.raises(CapacityExhaustedError):
            pool.take_specific(99)
        assert pool.take() == 5  # FIFO order intact after the rejection

    def test_exhaust_action_drains_pool_through_controller(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("fail-block", at_write=30, das=tuple(range(12))),
            FaultAction("exhaust-spares", at_write=400)))
        drive_injected(controller, driver, 420)
        reviver = controller.reviver
        assert reviver.ledger.pages_acquired >= 1
        assert driver.spares_drained > 0
        assert reviver.spares.available == 0
        # The exhausted pool raises through both register paths
        # (registers.take / registers.take_specific).
        with pytest.raises(CapacityExhaustedError):
            reviver.spares.take()
        with pytest.raises(CapacityExhaustedError):
            reviver.spares.take_specific(0)

    def test_failure_after_exhaustion_reacquires_through_os(self):
        controller, chip, wl, ospool = make_reviver_system(
            check_invariants=False)
        driver = attach(controller, schedule_of(
            FaultAction("fail-block", at_write=30, das=tuple(range(12))),
            FaultAction("exhaust-spares", at_write=400),
            FaultAction("fail-block", at_write=420,
                        das=tuple(range(64, 80)))))
        expected = drive_injected(controller, driver, 900)
        reviver = controller.reviver
        reports_total = reviver.reporter.report_count
        assert reports_total >= 2, \
            "post-exhaustion failures must re-trigger OS acquisition"
        assert len(reviver.links) > 12 - reviver.spares.total_consumed \
            or reviver.ledger.pages_acquired >= 2
        controller.check_invariants()
        assert_data_consistent(controller, expected)


# ---------------------------------------------------------------- campaign


class TestCampaign:
    SMALL = dict(num_blocks=64, mean=150.0, max_writes=12_000)

    def test_schedule_horizon_tracks_endurance_budget(self):
        assert _schedule_horizon(96, 250.0, 40_000) == 1_500
        assert _schedule_horizon(8, 10.0, 40_000) == 100   # floor
        assert _schedule_horizon(96, 250.0, 900) == 900    # max_writes cap

    def test_run_cell_passes_and_reports_coverage(self):
        result = run_cell(0, **self.SMALL)
        assert result["ok"], result["failure"]
        exact = result["exact"]
        assert exact["lifetime_writes"] > 0
        assert exact["recoveries"] == len(exact["crash_sites_fired"])
        assert exact["actions_applied"] >= 1
        low, high = RATIO_BAND
        assert low < result["ratio"] < high
        report = exact["report"]
        assert report["stop"].split(":")[0] in (
            "dead-fraction", "exhausted", "max-writes", "capacity-lost")
        assert report["crashes_recovered"] == exact["recoveries"]

    def test_reproduce_reruns_from_reported_schedule(self):
        result = run_cell(1, **self.SMALL)
        assert result["ok"], result["failure"]
        replay = reproduce(result["schedule_json"], 1, **self.SMALL)
        assert replay["ok"], replay["failure"]
        assert replay["schedule_json"] == result["schedule_json"]

    def test_reproduce_rejects_seed_schedule_mismatch(self):
        schedule = random_schedule(
            2, 64, _schedule_horizon(64, 150.0, 12_000))
        with pytest.raises(ConfigurationError):
            reproduce(schedule.to_json(), 3, **self.SMALL)

    def test_summarize_aggregates_failures_and_coverage(self):
        results = [
            {"seed": 0, "ok": True, "schedule_json": "{}",
             "exact": {"crash_sites_fired": ["mid-migration"],
                       "switch_scenarios": {"shadow-failed": 2},
                       "recoveries": 1, "spares_drained": 3,
                       "read_errors_delivered": 1, "victimized_writes": 0}},
            {"seed": 1, "ok": False, "schedule_json": "{}",
             "failure": {"stage": "exact", "error": "boom"}},
        ]
        summary = summarize(results)
        assert summary["cells"] == 2
        assert summary["failed"] == 1
        assert summary["crash_sites_fired"] == {"mid-migration": 1}
        assert summary["switch_scenarios"] == {"shadow-failed": 2}
        assert summary["cells_with_spare_exhaustion"] == 1
