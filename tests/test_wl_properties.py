"""Property-based tests shared by every wear-leveling scheme.

The fundamental invariant of wear leveling (Section I-B): *the same valid
PA consistently refers to the same data no matter where it is physically
migrated*.  These tests drive each scheme with randomized write/migration
interleavings over an in-memory device model and assert the invariant, plus
bijectivity, at every checkpoint.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SecurityRefreshConfig, StartGapConfig
from repro.wl import NoWL, SecurityRefresh, StartGap, TableWL


class DevicePort:
    """A MigrationPort over a plain array standing in for the PCM."""

    def __init__(self, blocks: int) -> None:
        self.cells = [-1] * blocks

    def can_start_migration(self) -> bool:
        return True

    def read_migration(self, da: int) -> int:
        return self.cells[da]

    def write_migration_pa(self, pa: int, tag: int) -> None:
        self.scheme_map = getattr(self, "scheme_map", None)
        assert self.scheme_map is not None, "bind() before migrating"
        self.cells[self.scheme_map(pa)] = tag

    def bind(self, scheme) -> None:
        self.scheme_map = scheme.map


def make_scheme(kind: str, device: int):
    if kind == "startgap":
        return StartGap(device + 1, config=StartGapConfig(psi=3, seed=2))
    if kind == "secref":
        return SecurityRefresh(device,
                               config=SecurityRefreshConfig(
                                   refresh_interval=3, seed=2))
    if kind == "table":
        return TableWL(device, swap_interval=3)
    if kind == "nowl":
        return NoWL(device)
    raise AssertionError(kind)


SCHEMES = ["startgap", "secref", "table", "nowl"]


@pytest.mark.parametrize("kind", SCHEMES)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_data_follows_pa_through_migrations(kind, data):
    """Writes to PAs always read back, whatever the migration schedule did."""
    device = 32
    scheme = make_scheme(kind, device)
    port = DevicePort(scheme.device_blocks)
    port.bind(scheme)
    expected = {}
    steps = data.draw(st.lists(
        st.integers(min_value=0, max_value=scheme.logical_blocks - 1),
        min_size=30, max_size=120))
    for tag, pa in enumerate(steps):
        port.cells[scheme.map(pa)] = 1000 + tag
        expected[pa] = 1000 + tag
        if kind == "table":
            scheme.record_write(scheme.map(pa))
        scheme.tick(port)
    for pa, tag in expected.items():
        assert port.cells[scheme.map(pa)] == tag


@pytest.mark.parametrize("kind", SCHEMES)
@given(ticks=st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_mapping_stays_bijective(kind, ticks):
    """Property: the PA->DA map is injective after any tick count."""
    scheme = make_scheme(kind, 16)
    port = DevicePort(scheme.device_blocks)
    port.bind(scheme)
    for tick in range(ticks):
        if kind == "table":
            scheme.record_write(scheme.map(tick % scheme.logical_blocks))
        scheme.tick(port)
    scheme.check_bijection()


@pytest.mark.parametrize("kind", ["startgap", "secref"])
def test_changed_pa_reports_are_exact(kind):
    """tick() reports exactly the PAs whose mapping changed."""
    scheme = make_scheme(kind, 32)
    port = DevicePort(scheme.device_blocks)
    port.bind(scheme)
    for _ in range(200):
        before = {pa: scheme.map(pa) for pa in range(scheme.logical_blocks)}
        changed = scheme.tick(port)
        after = {pa: scheme.map(pa) for pa in range(scheme.logical_blocks)}
        moved = sorted(pa for pa in before if before[pa] != after[pa])
        assert sorted(changed) == moved


@pytest.mark.parametrize("kind", SCHEMES)
def test_bulk_migrations_preserve_bijection(kind):
    scheme = make_scheme(kind, 16)
    if kind == "table":
        scheme.pa_writes[:] = np.arange(scheme.device_blocks)
        scheme.block_writes[:] = np.arange(scheme.device_blocks)
    scheme.bulk_migrations(50)
    scheme.check_bijection()


def test_startgap_levels_hot_traffic():
    """A single hot PA's wear spreads across the device over rotations."""
    scheme = StartGap(33, config=StartGapConfig(psi=1, seed=2))
    port = DevicePort(scheme.device_blocks)
    port.bind(scheme)
    wear = np.zeros(scheme.device_blocks, dtype=np.int64)
    hot_pa = 5
    for _ in range(33 * 34 * 3):  # three full rotations
        wear[scheme.map(hot_pa)] += 1
        scheme.tick(port)
    touched = int((wear > 0).sum())
    assert touched == scheme.device_blocks  # every block shared the load
