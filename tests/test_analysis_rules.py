"""Per-rule fixtures: each rule must flag its bad shape and pass the fix.

Every rule gets (at least) one *bad* fixture that produces a finding —
deleting the rule makes that test fail — and one *good* fixture showing
the sanctioned alternative stays clean.  The RAW-GEOM regression fixture
reintroduces PR 1's shipped bug verbatim.
"""

from pathlib import Path

import pytest

from repro.analysis import get_rule, lint_source, rule_ids

#: A path no rule exempts: findings here are purely content-driven.
GENERIC = Path("src/repro/mc/controller.py")

#: Real source root, for fixtures that lint shipped modules verbatim.
SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def findings_for(rule_id, text, path=GENERIC):
    return lint_source(text, path, rules=[get_rule(rule_id)])


class TestRegistry:
    def test_all_eleven_rules_registered(self):
        assert set(rule_ids()) == {
            "RAW-GEOM", "RNG-DET", "LINK-MUT", "EXC-SWALLOW", "FLOAT-EQ",
            "FAULT-HOOK", "TELEM-API",
            "SOA-ALIAS", "SHM-LIFE", "DET-WALLCLOCK", "HOOK-NONE"}

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("raw-geom").id == "RAW-GEOM"

    def test_rules_carry_rationale(self):
        for rule_id in rule_ids():
            rule = get_rule(rule_id)
            assert rule.summary and rule.rationale


class TestRawGeom:
    def test_pr1_victim_page_bug_is_caught(self):
        # The exact shape PR 1 shipped in sim/fast.py: page id from a PA
        # without the PagePool.base_pa offset.
        bad = "victim_page = pa // self.config.blocks_per_page\n"
        found = findings_for("RAW-GEOM", bad, Path("src/repro/sim/fast.py"))
        assert [f.rule for f in found] == ["RAW-GEOM"]
        assert "blocks_per_page" in found[0].message

    @pytest.mark.parametrize("bad", [
        "offset = pa % blocks_per_page\n",
        "base = page_id * bpp\n",
        "page, offset = divmod(pa, blocks_per_page)\n",
        "blocks = self.ledger.pages_acquired * self.blocks_per_page\n",
    ])
    def test_each_banned_operation_is_caught(self, bad):
        assert [f.rule for f in findings_for("RAW-GEOM", bad)] == ["RAW-GEOM"]

    @pytest.mark.parametrize("good", [
        "victim_page = self.ospool.page_of_pa(pa)\n",
        "offset = self.ospool.offset_in_page(pa)\n",
        "blocks = blocks_of_pages(pages, blocks_per_page)\n",
        "total = count * 2\n",
    ])
    def test_helper_calls_stay_clean(self, good):
        assert findings_for("RAW-GEOM", good) == []

    def test_geometry_owners_are_exempt(self):
        bad = "page = pa // blocks_per_page\n"
        for owner in ("src/repro/pcm/geometry.py",
                      "src/repro/osmodel/allocator.py",
                      "src/repro/units.py"):
            assert findings_for("RAW-GEOM", bad, Path(owner)) == []
        assert findings_for("RAW-GEOM", bad) != []


class TestRngDet:
    @pytest.mark.parametrize("bad", [
        "import numpy as np\nx = np.random.randint(0, 4)\n",
        "import numpy as np\nnp.random.seed(0)\n",
        "import numpy\nnumpy.random.shuffle(values)\n",
        "import random\n",
        "from random import choice\n",
    ])
    def test_global_rng_state_is_caught(self, bad):
        assert [f.rule for f in findings_for("RNG-DET", bad)] == ["RNG-DET"]

    @pytest.mark.parametrize("good", [
        "import numpy as np\nrng = np.random.default_rng(seed)\n",
        "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n",
        "from repro.rng import derive_rng\nrng = derive_rng(seed, 'fig5')\n",
        "import numpy as np\nseq = np.random.SeedSequence(7)\n",
    ])
    def test_generator_construction_stays_clean(self, good):
        assert findings_for("RNG-DET", good) == []

    def test_rng_module_is_exempt(self):
        bad = "import random\n"
        assert findings_for("RNG-DET", bad, Path("src/repro/rng.py")) == []


class TestLinkMut:
    @pytest.mark.parametrize("bad", [
        "table._pointer[da] = vpa\n",
        "del reviver.links._inverse[vpa]\n",
        "pool._spares.append(pa)\n",
    ])
    def test_foreign_internal_access_is_caught(self, bad):
        assert [f.rule for f in findings_for("LINK-MUT", bad)] == ["LINK-MUT"]

    @pytest.mark.parametrize("good", [
        "self._pointer[da] = vpa\n",
        "cls._spares = []\n",
        "table.link(da, vpa)\n",
        "pool.add(pas)\n",
    ])
    def test_own_state_and_api_calls_stay_clean(self, good):
        assert findings_for("LINK-MUT", good) == []

    def test_reviver_package_is_exempt(self):
        bad = "table._pointer[da] = vpa\n"
        assert findings_for(
            "LINK-MUT", bad, Path("src/repro/reviver/chains.py")) == []


class TestExcSwallow:
    def test_bare_except_is_caught(self):
        bad = "try:\n    step()\nexcept:\n    pass\n"
        found = findings_for("EXC-SWALLOW", bad)
        assert [f.rule for f in found] == ["EXC-SWALLOW"]
        assert "bare except" in found[0].message

    @pytest.mark.parametrize("bad", [
        "try:\n    step()\nexcept Exception:\n    pass\n",
        "try:\n    step()\nexcept BaseException as exc:\n    log(exc)\n",
        "try:\n    step()\nexcept ReproError:\n    count += 1\n",
        "try:\n    step()\nexcept (ValueError, Exception):\n    pass\n",
        "try:\n    step()\nexcept errors.ReproError:\n    pass\n",
    ])
    def test_broad_handler_without_reraise_is_caught(self, bad):
        assert [f.rule for f in findings_for("EXC-SWALLOW", bad)] \
            == ["EXC-SWALLOW"]

    @pytest.mark.parametrize("good", [
        "try:\n    step()\nexcept Exception:\n    raise\n",
        "try:\n    step()\nexcept Exception as exc:\n"
        "    raise ProtocolError('wrapped') from exc\n",
        "try:\n    step()\nexcept ValueError:\n    pass\n",
        "try:\n    step()\nexcept CapacityExhaustedError:\n    stop()\n",
    ])
    def test_narrow_or_reraising_handlers_stay_clean(self, good):
        assert findings_for("EXC-SWALLOW", good) == []


class TestFloatEq:
    @pytest.mark.parametrize("bad", [
        "if mean == 0.0:\n    return 0.0\n",
        "assert fraction != 1.0\n",
        "ok = 0.5 == ratio\n",
    ])
    def test_float_literal_equality_is_caught(self, bad):
        assert [f.rule for f in findings_for("FLOAT-EQ", bad)] == ["FLOAT-EQ"]

    @pytest.mark.parametrize("good", [
        "if count == 0:\n    return\n",
        "if math.isclose(mean, 0.0):\n    return\n",
        "if fraction <= 0.5:\n    stop()\n",
        "flag = name == 'reviver'\n",
    ])
    def test_sanctioned_comparisons_stay_clean(self, good):
        assert findings_for("FLOAT-EQ", good) == []


class TestFaultHook:
    @pytest.mark.parametrize("bad", [
        "engine.inject = driver\n",
        "chip.inject.on_read(da)\n",
        "controller.inject = None\n",
        "hooks = self.chip.inject\n",
    ])
    def test_foreign_hook_access_is_caught(self, bad):
        assert [f.rule for f in findings_for("FAULT-HOOK", bad)] \
            == ["FAULT-HOOK"]

    @pytest.mark.parametrize("good", [
        "self.inject = None\n",
        "if self.inject is not None:\n    self.inject.poll(writes)\n",
        "driver.attach_exact(engine)\n",
        "schedule = random_schedule(seed, 96, 4000)\n",
    ])
    def test_own_hook_and_driver_api_stay_clean(self, good):
        assert findings_for("FAULT-HOOK", good) == []

    def test_faultinject_package_is_exempt(self):
        bad = "engine.inject = self\n"
        assert findings_for(
            "FAULT-HOOK", bad,
            Path("src/repro/faultinject/hooks.py")) == []

    def test_array_layer_is_not_exempt(self):
        # The shard-array layer wires N engines; hook discipline applies
        # to every one of them.
        bad = "engine.inject = driver\n"
        for path in ("src/repro/array/engine.py",
                     "src/repro/array/shard.py"):
            assert [f.rule for f in findings_for(
                "FAULT-HOOK", bad, Path(path))] == ["FAULT-HOOK"]

    def test_array_shard_wiring_stays_clean(self):
        # The sanctioned per-shard pattern: project the schedule, then
        # let the driver attach itself.
        good = ("driver = ScheduleDriver(for_shard(schedule, shard))\n"
                "driver.attach_fast(engine)\n")
        assert findings_for("FAULT-HOOK", good,
                            Path("src/repro/array/shard.py")) == []


class TestTelemApi:
    @pytest.mark.parametrize("bad", [
        "engine.telem = session\n",
        "controller.telem.emit('crash')\n",
        "reviver.links.telem = session\n",
        "session = self.chip.telem\n",
    ])
    def test_foreign_hook_access_is_caught(self, bad):
        assert [f.rule for f in findings_for("TELEM-API", bad)] \
            == ["TELEM-API"]

    @pytest.mark.parametrize("bad", [
        "count = Counter('events')\n",
        "registry = Registry(enabled=False)\n",
        "hist = Histogram('latency', (0.1, 1.0))\n",
    ])
    def test_direct_metric_construction_is_caught(self, bad):
        assert [f.rule for f in findings_for("TELEM-API", bad)] \
            == ["TELEM-API"]

    @pytest.mark.parametrize("good", [
        "self.telem = None\n",
        "if self.telem is not None:\n    self.telem.emit('crash')\n",
        "attach_exact(session, engine)\n",
        "counter = session.registry.counter('grid.cells')\n",
    ])
    def test_own_hook_and_attach_api_stay_clean(self, good):
        assert findings_for("TELEM-API", good) == []

    def test_telemetry_package_is_exempt(self):
        bad = "engine.telem = session\nregistry = Registry()\n"
        assert findings_for(
            "TELEM-API", bad,
            Path("src/repro/telemetry/__init__.py")) == []

    def test_array_layer_is_not_exempt(self):
        # Per-shard telemetry still goes through sessions and attach_*;
        # neither the shard cell nor the merging engine may shortcut.
        bad = "engine.telem = session\n"
        for path in ("src/repro/array/engine.py",
                     "src/repro/array/shard.py"):
            assert [f.rule for f in findings_for(
                "TELEM-API", bad, Path(path))] == ["TELEM-API"]
        assert [f.rule for f in findings_for(
            "TELEM-API", "registry = Registry()\n",
            Path("src/repro/array/engine.py"))] == ["TELEM-API"]

    def test_array_shard_wiring_stays_clean(self):
        # The sanctioned per-shard pattern: own session, sanctioned
        # attach, pure snapshot merging.
        good = ("session = TelemetrySession()\n"
                "attach_fast(session, engine)\n"
                "merged = merge_snapshots(merged, snapshot)\n")
        assert findings_for("TELEM-API", good,
                            Path("src/repro/array/shard.py")) == []

class TestSoaAlias:
    """The whole-program view-aliasing rule over the batched kernel."""

    def test_chained_advanced_index_store_is_caught(self):
        bad = ("import numpy as np\n"
               "def redirect(wear: np.ndarray, limit: int) -> None:\n"
               "    mask = wear > limit\n"
               "    wear[mask][0] = 0\n")
        found = findings_for("SOA-ALIAS", bad)
        assert [f.rule for f in found] == ["SOA-ALIAS"]
        assert "temporary copy" in found[0].message

    def test_dealiasing_rebind_then_write_is_caught(self):
        bad = ("import numpy as np\n"
               "def bump(wear: np.ndarray) -> None:\n"
               "    wear = wear + 1\n"
               "    wear[0] = 5\n")
        found = findings_for("SOA-ALIAS", bad)
        assert [(f.rule, f.line) for f in found] == [("SOA-ALIAS", 3)]
        assert "rebinds a row view" in found[0].message

    def test_view_propagates_through_ravel_and_slices(self):
        bad = ("import numpy as np\n"
               "def flatten(wear: np.ndarray) -> None:\n"
               "    flat = wear.ravel()\n"
               "    flat = flat * 2\n"
               "    flat[0] = 1\n")
        assert [f.rule for f in findings_for("SOA-ALIAS", bad)] \
            == ["SOA-ALIAS"]

    def test_verbatim_startgap_bulk_rows_stays_clean(self):
        # sim/batched.py's startgap_bulk_rows: basic-slice stores on a
        # fresh array plus scalar attribute rebinds — all sanctioned.
        good = ("import numpy as np\n"
                "def rows_of(wl, moves: int, period: int):\n"
                "    gaps = (wl.gap - np.arange(moves, dtype=np.int64))"
                " % period\n"
                "    rows = np.empty((moves, 2), dtype=np.int64)\n"
                "    rows[:, 0] = (gaps - 1) % period\n"
                "    rows[:, 1] = gaps\n"
                "    wl.gap = int((wl.gap - moves) % period)\n"
                "    return rows\n")
        assert findings_for("SOA-ALIAS", good) == []

    def test_verbatim_rehome_aliasing_stays_clean(self):
        # sim/batched.py's _rehome: storing a row view into an attribute
        # IS the aliasing invariant, not a violation.
        good = ("def rehome(self, i: int, chip) -> None:\n"
                "    self.wear[i] = chip.wear\n"
                "    chip.wear = self.wear[i]\n")
        assert findings_for("SOA-ALIAS", good) == []

    def test_verbatim_migration_mask_rebind_stays_clean(self):
        # sim/batched.py's migration phase: `dsts` is a fresh index
        # array (advanced indexing), so narrowing it in place is legal;
        # the actual wear write goes through np.add.at on the row view.
        good = ("import numpy as np\n"
                "def migrate(self, engine, rows, i: int) -> None:\n"
                "    dsts = engine._redirect[rows[:, 1]]\n"
                "    dsts = dsts[~self.failed[i][dsts]]\n"
                "    np.add.at(self.wear[i], dsts, 1)\n")
        assert findings_for("SOA-ALIAS", good) == []

    def test_compute_and_return_rebind_stays_clean(self):
        # No later element store through the name: the rebind is a pure
        # value computation, which forward_many-style code relies on.
        good = ("import numpy as np\n"
                "def scaled(wear: np.ndarray) -> np.ndarray:\n"
                "    wear = wear * 2\n"
                "    return wear\n")
        assert findings_for("SOA-ALIAS", good) == []

    def test_explicit_copy_is_the_sanctioned_opt_out(self):
        good = ("import numpy as np\n"
                "def snapshot(wear: np.ndarray) -> np.ndarray:\n"
                "    wear = wear.copy() + 1\n"
                "    wear[0] = 5\n"
                "    return wear\n")
        assert findings_for("SOA-ALIAS", good) == []

    def test_registered_batchable_pair_is_exempt(self):
        # The project model reads register_batchable() call sites: a
        # build/finish pair owns its arrays before/after the kernel holds
        # them, so the rebind check stands down (single-file fallback
        # still sees the registration in the same module).
        text = ("import numpy as np\n"
                "def _build_cell(spec, wear: np.ndarray):\n"
                "    wear = wear + 1\n"
                "    wear[0] = 5\n"
                "    return wear\n"
                "def _finish_cell(value):\n"
                "    return value\n"
                "register_batchable('mod:_cell', _build_cell,"
                " _finish_cell)\n")
        assert findings_for("SOA-ALIAS", text) == []
        # Without the registration the same body is a finding.
        unregistered = ("import numpy as np\n"
                        "def _build_cell(spec, wear: np.ndarray):\n"
                        "    wear = wear + 1\n"
                        "    wear[0] = 5\n"
                        "    return wear\n")
        assert [f.rule for f in findings_for("SOA-ALIAS", unregistered)] \
            == ["SOA-ALIAS"]


class TestShmLife:
    """SharedMemory lifecycle: close on all paths, never unlink twice."""

    def test_missing_close_on_straight_path_is_caught(self):
        bad = ("from multiprocessing import shared_memory\n"
               "def read(name: str, nbytes: int) -> bytes:\n"
               "    segment = shared_memory.SharedMemory(name=name)\n"
               "    return bytes(segment.buf[:nbytes])\n")
        found = findings_for("SHM-LIFE", bad)
        assert [f.rule for f in found] == ["SHM-LIFE"]
        assert "close()" in found[0].message

    def test_missing_close_on_one_branch_is_caught(self):
        bad = ("from multiprocessing import shared_memory\n"
               "def read(name: str, nbytes: int, keep: bool) -> bytes:\n"
               "    segment = shared_memory.SharedMemory(name=name)\n"
               "    data = bytes(segment.buf[:nbytes])\n"
               "    if keep:\n"
               "        segment.close()\n"
               "    return data\n")
        assert [f.rule for f in findings_for("SHM-LIFE", bad)] \
            == ["SHM-LIFE"]

    def test_double_unlink_is_caught(self):
        bad = ("from multiprocessing import shared_memory\n"
               "def consume(name: str) -> None:\n"
               "    segment = shared_memory.SharedMemory(name=name)\n"
               "    segment.close()\n"
               "    segment.unlink()\n"
               "    segment.unlink()\n")
        found = findings_for("SHM-LIFE", bad)
        assert [(f.rule, f.line) for f in found] == [("SHM-LIFE", 6)]
        assert "twice" in found[0].message

    def test_verbatim_pack_and_unpack_stay_clean(self):
        # experiments/shm.py end to end: try/finally close, worker-side
        # no-unlink (the parent owns destruction), escape via _untrack.
        text = (SRC_ROOT / "repro" / "experiments" / "shm.py").read_text(
            encoding="utf-8")
        assert findings_for(
            "SHM-LIFE", text, Path("src/repro/experiments/shm.py")) == []

    def test_try_finally_close_stays_clean(self):
        good = ("from multiprocessing import shared_memory\n"
                "def read(name: str, nbytes: int) -> bytes:\n"
                "    segment = shared_memory.SharedMemory(name=name)\n"
                "    try:\n"
                "        data = bytes(segment.buf[:nbytes])\n"
                "    finally:\n"
                "        segment.close()\n"
                "        segment.unlink()\n"
                "    return data\n")
        assert findings_for("SHM-LIFE", good) == []

    def test_returned_segment_transfers_ownership(self):
        good = ("from multiprocessing import shared_memory\n"
                "def allocate(size: int):\n"
                "    segment = shared_memory.SharedMemory(create=True,"
                " size=size)\n"
                "    return segment\n")
        assert findings_for("SHM-LIFE", good) == []


class TestDetWallclock:
    @pytest.mark.parametrize("bad", [
        "import time\nstamp = time.time()\n",
        "import time\nt0 = time.perf_counter()\n",
        "import datetime\nts = datetime.datetime.now()\n",
        "import random\nx = random.random()\n",
        "from time import perf_counter\n",
    ])
    def test_ambient_clock_reads_are_caught(self, bad):
        assert [f.rule for f in findings_for("DET-WALLCLOCK", bad)] \
            == ["DET-WALLCLOCK"]

    @pytest.mark.parametrize("good", [
        "import time\ntime.sleep(0.1)\n",
        "import numpy as np\nrng = np.random.default_rng(3)\n",
        "import numpy as np\nseq = np.random.SeedSequence(7)\n",
        "import numpy as np\n"
        "g = np.random.Generator(np.random.PCG64(1))\n",
    ])
    def test_seeded_streams_and_sleep_stay_clean(self, good):
        assert findings_for("DET-WALLCLOCK", good) == []

    def test_telemetry_and_benchmarks_are_exempt(self):
        bad = "import time\nstamp = time.time()\n"
        for path in ("src/repro/telemetry/profile.py",
                     "benchmarks/test_fast_bench.py"):
            assert findings_for("DET-WALLCLOCK", bad, Path(path)) == []
        assert findings_for("DET-WALLCLOCK", bad) != []

    def test_justified_allow_comment_silences(self):
        text = ("import time\n"
                "t0 = time.perf_counter()  "
                "# repro: allow(DET-WALLCLOCK): phase profile only\n")
        assert findings_for("DET-WALLCLOCK", text) == []


class TestHookNone:
    @pytest.mark.parametrize("bad", [
        "def attach(engine, telem=0):\n    pass\n",
        "def run(engine, inject):\n    pass\n",
        "def spawn(*, inject=False):\n    pass\n",
    ])
    def test_non_none_hook_defaults_are_caught(self, bad):
        assert [f.rule for f in findings_for("HOOK-NONE", bad)] \
            == ["HOOK-NONE"]

    def test_unguarded_hook_call_is_caught(self):
        bad = ("class E:\n"
               "    def step(self) -> None:\n"
               "        self.telem.emit('x')\n")
        found = findings_for("HOOK-NONE", bad)
        assert [(f.rule, f.line) for f in found] == [("HOOK-NONE", 3)]

    def test_guarded_call_stays_clean(self):
        good = ("class E:\n"
                "    def step(self) -> None:\n"
                "        if self.telem is not None:\n"
                "            self.telem.emit('x')\n")
        assert findings_for("HOOK-NONE", good) == []

    def test_verbatim_fast_epoch_alias_guard_stays_clean(self):
        # sim/fast.py's _epoch idiom: early return on None, then a local
        # alias used unguarded — the dataflow pass must carry the fact
        # through the rebind.
        good = ("class E:\n"
                "    def _epoch(self) -> None:\n"
                "        if self.telem is None:\n"
                "            return\n"
                "        telem = self.telem\n"
                "        telem.phase('software')\n")
        assert findings_for("HOOK-NONE", good) == []

    def test_none_default_with_guard_stays_clean(self):
        good = ("def attach(engine, telem=None):\n"
                "    if telem is not None:\n"
                "        telem.emit('attach')\n")
        assert findings_for("HOOK-NONE", good) == []

    def test_telemetry_and_faultinject_packages_are_exempt(self):
        bad = "def attach(engine, telem=0):\n    pass\n"
        for path in ("src/repro/telemetry/attach.py",
                     "src/repro/faultinject/hooks.py"):
            assert findings_for("HOOK-NONE", bad, Path(path)) == []
