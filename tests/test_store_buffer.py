"""Directed tests of the suspension store buffer (delayed acquisition).

The paper's trickiest protocol corner: a migration write faults when no
spare PA exists.  The framework must (1) not lose the in-flight datum,
(2) keep it readable, (3) let newer software writes supersede it, and
(4) victimize the next software write to acquire a page and then drain.
These tests *force* that situation deterministically by lowering one
block's ECC threshold right before a scheduled gap move.
"""

import pytest

from .conftest import make_reviver_system


def force_migration_fault(controller, chip, wear_leveler):
    """Make the next gap move's destination fault, with no spares around.

    Returns the PA that owns the migrated datum post-commit.
    """
    assert controller.reviver.spares.available == 0
    # The next gap move writes into the current gap position.
    dst = wear_leveler.gap
    chip.ecc.thresholds[dst] = chip.wear[dst] + 1
    # Drive writes until the move executes (psi boundary).
    remaining = wear_leveler.psi - (wear_leveler.write_count
                                    % wear_leveler.psi)
    moved_pa = None
    for _ in range(remaining):
        controller.service_write(0, tag=777_000)
        if controller.reviver.acquisition_pending:
            break
    assert controller.reviver.acquisition_pending, \
        "the forced fault must suspend the framework"
    assert len(controller._parked) == 1
    moved_pa = next(iter(controller._parked))
    return moved_pa


@pytest.fixture
def suspended():
    """A system suspended mid-migration with one parked write."""
    controller, chip, wear_leveler, ospool = make_reviver_system(
        mean=10 ** 6, check_invariants=False)  # no organic failures
    # Park: the destination block's data is in flight.
    moved_pa = force_migration_fault(controller, chip, wear_leveler)
    return controller, chip, wear_leveler, ospool, moved_pa


class TestSuspension:
    def test_parked_datum_remains_readable(self, suspended):
        controller, chip, wear_leveler, ospool, moved_pa = suspended
        tag = controller._parked[moved_pa]
        # Find the virtual block whose translation is the parked PA.
        for vblock in range(ospool.virtual_blocks):
            if ospool.translate(vblock) == moved_pa:
                result = controller.service_read(vblock)
                assert result.tag == tag
                assert result.pcm_accesses == 0  # store-buffer hit
                return
        pytest.skip("moved PA is not software-visible in this layout")

    def test_migrations_pause_while_suspended(self, suspended):
        controller, chip, wear_leveler, _, _ = suspended
        assert not controller.can_start_migration()
        moves_before = wear_leveler.gap_moves
        # Reads do not victimize; the scheme stays paused.
        controller.service_read(1)
        assert wear_leveler.gap_moves == moves_before

    def test_next_write_is_victimized_and_drains(self, suspended):
        controller, chip, wear_leveler, ospool, moved_pa = suspended
        reports_before = controller.reporter.report_count
        result = controller.service_write(5, tag=888)
        assert result.victimized
        assert controller.reporter.report_count == reports_before + 1
        assert controller.reporter.last_event().victimized
        assert not controller.reviver.acquisition_pending
        assert not controller._parked  # drained
        # The datum landed somewhere durable: read it back via its PA owner.
        for vblock in range(ospool.virtual_blocks):
            if ospool.translate(vblock) == moved_pa:
                assert controller.service_read(vblock).tag is not None
                return

    def test_software_write_supersedes_parked_datum(self, suspended):
        controller, chip, wear_leveler, ospool, moved_pa = suspended
        target = None
        for vblock in range(ospool.virtual_blocks):
            if ospool.translate(vblock) == moved_pa:
                target = vblock
                break
        if target is None:
            pytest.skip("moved PA is not software-visible in this layout")
        # This write victimizes (acquires a page) AND supersedes the parked
        # value for the same PA; afterwards the newest tag must win.
        controller.service_write(target, tag=999_111)
        assert controller.service_read(target).tag == 999_111

    def test_failed_block_linked_after_acquisition(self, suspended):
        controller, chip, wear_leveler, _, _ = suspended
        failed = [da for da in range(chip.num_blocks)
                  if chip.is_failed(da)]
        assert len(failed) == 1
        assert controller.reviver.links.vpa_of(failed[0]) is None  # queued
        controller.service_write(5, tag=1)  # victimize + drain + link
        assert controller.reviver.links.vpa_of(failed[0]) is not None

    def test_invariants_clean_after_resume(self, suspended):
        controller, *_ = suspended
        controller.service_write(5, tag=1)
        controller.check_invariants()
