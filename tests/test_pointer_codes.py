"""Tests for the 7-modular-redundancy pointer code over stuck-at blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.pointer_codes import (
    CODEWORD_CELLS,
    REPLICAS,
    StuckAtBlock,
    decode_pointer,
    encode_pointer,
    max_tolerated_faults_per_group,
    pointer_survives,
)
from repro.errors import ConfigurationError


class TestStuckAtBlock:
    def test_writes_take_effect_on_healthy_cells(self):
        block = StuckAtBlock(16)
        block.write_bits(0, np.array([1, 0, 1, 1], dtype=np.uint8))
        assert block.read_bits(0, 4).tolist() == [1, 0, 1, 1]

    def test_stuck_cells_ignore_writes(self):
        block = StuckAtBlock(16, stuck={2: 0})
        block.write_bits(0, np.ones(4, dtype=np.uint8))
        assert block.read_bits(0, 4).tolist() == [1, 1, 0, 1]

    def test_stuck_at_one(self):
        block = StuckAtBlock(8, stuck={0: 1})
        block.write_bits(0, np.zeros(8, dtype=np.uint8))
        assert block.read_bits(0, 1).tolist() == [1]

    def test_random_faults_count(self):
        block = StuckAtBlock.with_random_faults(512, faults=10, seed=1)
        assert block.fault_count == 10

    def test_bounds(self):
        block = StuckAtBlock(8)
        with pytest.raises(ConfigurationError):
            block.write_bits(6, np.zeros(4, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            block.read_bits(-1, 2)
        with pytest.raises(ConfigurationError):
            block.stick(8, 1)


class TestPointerCode:
    def test_round_trip_healthy_block(self):
        block = StuckAtBlock(512)
        encode_pointer(block, 0xDEADBEEF)
        assert decode_pointer(block) == 0xDEADBEEF

    def test_survives_three_faults_per_group(self):
        block = StuckAtBlock(512)
        # Wedge 3 cells of bit 0's group against the written value.
        for cell in range(3):
            block.stick(cell, 0)
        encode_pointer(block, 0xFFFFFFFF)
        assert decode_pointer(block) == 0xFFFFFFFF

    def test_fails_at_four_adverse_faults_in_one_group(self):
        block = StuckAtBlock(512)
        for cell in range(4):
            block.stick(cell, 0)
        encode_pointer(block, 0x1)
        assert decode_pointer(block) == 0x0  # bit 0 lost: the code's limit

    def test_tolerance_constant(self):
        assert max_tolerated_faults_per_group() == 3
        assert CODEWORD_CELLS == 224  # 32 bits x 7 cells fit a 512b block

    def test_survives_ecp6_scale_damage(self):
        """A block that just exceeded ECP6 has ~7 dead cells out of 512:
        random placements virtually never defeat the code."""
        survived = 0
        for seed in range(50):
            block = StuckAtBlock.with_random_faults(512, faults=7, seed=seed)
            if pointer_survives(block, 0xCAFE0000 + seed):
                survived += 1
        assert survived >= 48

    @given(pointer=st.integers(min_value=0, max_value=2**32 - 1),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_pointers_survive_scattered_damage(self, pointer, seed):
        """Property: <=3 random faults can never defeat the code (they
        cannot exceed 3 in any group)."""
        block = StuckAtBlock.with_random_faults(512, faults=3, seed=seed)
        assert pointer_survives(block, pointer)

    def test_rejects_oversized_pointer(self):
        with pytest.raises(ConfigurationError):
            encode_pointer(StuckAtBlock(512), 1 << 32)

    def test_rejects_small_block(self):
        with pytest.raises(ConfigurationError):
            encode_pointer(StuckAtBlock(64), 1)

    def test_adversarial_group_analysis(self):
        """Exhaustive per-group check: for every fault count 0..7, the
        decoded bit flips exactly when adverse faults reach 4."""
        for adverse in range(REPLICAS + 1):
            block = StuckAtBlock(512)
            for cell in range(adverse):
                block.stick(cell, 0)
            encode_pointer(block, 0x1)
            expected_bit = 1 if adverse <= 3 else 0
            assert (decode_pointer(block) & 1) == expected_bit, adverse
