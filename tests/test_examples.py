"""Smoke-run every example script: the documented entry points must work.

Each example is executed as a subprocess exactly as the README instructs;
the scripts carry their own assertions (data integrity, reboot agreement),
so a zero exit status means the narrative they print is actually true.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    assert EXAMPLES == [
        "array_scaling.py",
        "attack_resilience.py",
        "freep_vs_reviver.py",
        "lifetime_study.py",
        "quickstart.py",
        "reboot_recovery.py",
        "telemetry_profile.py",
        "wear_quality.py",
    ]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their results"
