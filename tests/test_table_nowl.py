"""Unit tests for TableWL and NoWL."""

import pytest

from repro.errors import ConfigurationError
from repro.wl import NoWL, NullPort, TableWL


class TestTableWL:
    def test_initial_identity(self):
        table = TableWL(16)
        assert all(table.map(pa) == pa for pa in range(16))
        table.check_bijection()

    def test_swap_picks_hot_and_cold(self):
        table = TableWL(16, swap_interval=4)
        port = NullPort()
        for _ in range(3):
            table.record_write(0)
            table.tick(port)
        table.record_write(0)
        changed = table.tick(port)
        assert table.swaps == 1
        assert 0 in changed
        assert table.map(0) != 0  # hot PA moved to the coldest block

    def test_counter_exchange_prevents_repeat_pick(self):
        table = TableWL(8, swap_interval=1)
        port = NullPort()
        first_targets = set()
        for _ in range(4):
            table.record_write(table.map(0))
            table.tick(port)
            first_targets.add(table.map(0))
        # The hot PA keeps moving to new homes, not ping-ponging between 2.
        assert len(first_targets) >= 3

    def test_no_swap_when_uniform(self):
        table = TableWL(8, swap_interval=1)
        port = NullPort()
        assert table.tick(port) == []
        assert table.swaps == 0

    def test_freeze(self):
        table = TableWL(8, swap_interval=1)
        table.record_write(0)
        table.freeze()
        assert table.tick(NullPort()) == []

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            TableWL(8, swap_interval=0)

    def test_schedule_due(self):
        table = TableWL(8, swap_interval=10)
        assert table.schedule_due(35) == 3


class TestNoWL:
    def test_identity_forever(self):
        nowl = NoWL(16)
        port = NullPort()
        for _ in range(100):
            nowl.tick(port)
        assert all(nowl.map(pa) == pa for pa in range(16))
        nowl.check_bijection()

    def test_no_migrations(self):
        nowl = NoWL(16)
        assert nowl.bulk_migrations(100).size == 0
        assert nowl.schedule_due(10_000) == 0

    def test_tick_counts_writes(self):
        nowl = NoWL(16)
        port = NullPort()
        for _ in range(5):
            nowl.tick(port)
        assert nowl.write_count == 5
