"""Tests for the parallel experiment-execution layer."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import fig5
from repro.experiments.parallel import (
    Cell,
    GridRunner,
    cell_seed,
    jsonify,
)
from repro.sim.metrics import LifetimeSeries, SamplePoint


def _square(value, seed):
    """Module-level cell function (workers re-import this module)."""
    return {"square": value * value, "seed": seed}


def _grid(count=4, seed=7):
    cells = []
    for i in range(count):
        key = f"unit/{i}"
        cells.append(Cell(key=key, fn=f"{__name__}:_square",
                          kwargs=dict(value=i, seed=cell_seed(seed, key))))
    return cells


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(1, "fig5/tiny/ocean") == cell_seed(
            1, "fig5/tiny/ocean")

    def test_distinct_per_key_and_seed(self):
        seeds = {cell_seed(s, k) for s in (1, 2)
                 for k in ("a", "b", "c")}
        assert len(seeds) == 6


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        payload = jsonify({"a": np.int64(3), "b": np.float64(0.5),
                           "c": np.arange(3), "d": [np.bool_(True)],
                           "e": ("x", np.int32(1))})
        assert json.loads(json.dumps(payload)) == {
            "a": 3, "b": 0.5, "c": [0, 1, 2], "d": [True], "e": ["x", 1]}


class TestGridRunner:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            GridRunner(jobs=0)

    def test_rejects_duplicate_keys(self):
        cell = _grid(1)[0]
        with pytest.raises(ConfigurationError):
            GridRunner().run([cell, cell])

    def test_serial_results(self):
        results = GridRunner(jobs=1).run(_grid())
        assert results["unit/3"]["square"] == 9

    def test_pool_matches_serial(self):
        serial = GridRunner(jobs=1).run(_grid())
        pooled = GridRunner(jobs=2).run(_grid())
        assert serial == pooled

    def test_progress_callback_sees_every_cell(self):
        seen = []
        runner = GridRunner(
            jobs=1, progress=lambda o, done, total: seen.append(
                (o.key, done, total)))
        runner.run(_grid(3))
        assert [s[0] for s in seen] == ["unit/0", "unit/1", "unit/2"]
        assert seen[-1][1:] == (3, 3)

    def test_report_mentions_cells(self):
        runner = GridRunner(jobs=1)
        runner.run(_grid(2))
        text = runner.report()
        assert "2 cells" in text and "unit/1" in text

    def test_resume_skips_completed_cells(self, tmp_path):
        resume = tmp_path / "cells.json"
        GridRunner(jobs=1, resume=resume).run(_grid())
        payload = json.loads(resume.read_text())
        assert set(payload["cells"]) == {f"unit/{i}" for i in range(4)}
        # Poison one cached value: a resumed run must take it verbatim,
        # proving the cell was skipped, not re-executed.
        payload["cells"]["unit/2"]["value"] = {"square": -1, "seed": 0}
        resume.write_text(json.dumps(payload))
        runner = GridRunner(jobs=1, resume=resume)
        results = runner.run(_grid())
        assert results["unit/2"]["square"] == -1
        assert all(o.cached for o in runner.outcomes)

    def test_resume_completes_partial_run(self, tmp_path):
        resume = tmp_path / "cells.json"
        GridRunner(jobs=1, resume=resume).run(_grid(2))
        runner = GridRunner(jobs=1, resume=resume)
        results = runner.run(_grid(4))
        assert len(results) == 4
        cached = {o.key for o in runner.outcomes if o.cached}
        assert cached == {"unit/0", "unit/1"}


class TestSeriesPayload:
    def test_round_trip(self):
        series = LifetimeSeries(label="x", points=[
            SamplePoint(0, 1.0, 1.0, 1.0),
            SamplePoint(500, 0.9, 0.8, 1.25)])
        rebuilt = LifetimeSeries.from_payload(series.to_payload(), label="x")
        assert rebuilt == series


class TestExperimentDeterminism:
    """The parallel runner must reproduce the serial runner bit-for-bit."""

    def test_fig5_parallel_matches_serial_exactly(self):
        serial = fig5.as_dict(fig5.run(scale="tiny",
                                       benchmarks=["ocean", "mg"],
                                       seed=1, jobs=1))
        pooled = fig5.as_dict(fig5.run(scale="tiny",
                                       benchmarks=["ocean", "mg"],
                                       seed=1, jobs=2))
        assert serial == pooled

    def test_fig5_seed_changes_results_deterministically(self):
        one = fig5.as_dict(fig5.run(scale="tiny", benchmarks=["ocean"],
                                    seed=1))
        again = fig5.as_dict(fig5.run(scale="tiny", benchmarks=["ocean"],
                                      seed=1))
        assert one == again
