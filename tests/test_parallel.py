"""Tests for the parallel experiment-execution layer."""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import fig5
from repro.experiments.parallel import (
    Cell,
    GridRunner,
    cell_seed,
    jsonify,
)
from repro.experiments.shm import (RAW, SHM, SHM_MIN_BYTES, pack_result,
                                   unpack_result)
from repro.sim.metrics import LifetimeSeries, SamplePoint


def _square(value, seed):
    """Module-level cell function (workers re-import this module)."""
    return {"square": value * value, "seed": seed}


def _grid(count=4, seed=7):
    cells = []
    for i in range(count):
        key = f"unit/{i}"
        cells.append(Cell(key=key, fn=f"{__name__}:_square",
                          kwargs=dict(value=i, seed=cell_seed(seed, key))))
    return cells


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(1, "fig5/tiny/ocean") == cell_seed(
            1, "fig5/tiny/ocean")

    def test_distinct_per_key_and_seed(self):
        seeds = {cell_seed(s, k) for s in (1, 2)
                 for k in ("a", "b", "c")}
        assert len(seeds) == 6


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        payload = jsonify({"a": np.int64(3), "b": np.float64(0.5),
                           "c": np.arange(3), "d": [np.bool_(True)],
                           "e": ("x", np.int32(1))})
        assert json.loads(json.dumps(payload)) == {
            "a": 3, "b": 0.5, "c": [0, 1, 2], "d": [True], "e": ["x", 1]}


class TestGridRunner:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            GridRunner(jobs=0)

    def test_rejects_duplicate_keys(self):
        cell = _grid(1)[0]
        with pytest.raises(ConfigurationError):
            GridRunner().run([cell, cell])

    def test_serial_results(self):
        results = GridRunner(jobs=1).run(_grid())
        assert results["unit/3"]["square"] == 9

    def test_pool_matches_serial(self):
        serial = GridRunner(jobs=1).run(_grid())
        pooled = GridRunner(jobs=2).run(_grid())
        assert serial == pooled

    def test_progress_callback_sees_every_cell(self):
        seen = []
        runner = GridRunner(
            jobs=1, progress=lambda o, done, total: seen.append(
                (o.key, done, total)))
        runner.run(_grid(3))
        assert [s[0] for s in seen] == ["unit/0", "unit/1", "unit/2"]
        assert seen[-1][1:] == (3, 3)

    def test_report_mentions_cells(self):
        runner = GridRunner(jobs=1)
        runner.run(_grid(2))
        text = runner.report()
        assert "2 cells" in text and "unit/1" in text

    def test_resume_skips_completed_cells(self, tmp_path):
        resume = tmp_path / "cells.json"
        GridRunner(jobs=1, resume=resume).run(_grid())
        payload = json.loads(resume.read_text())
        assert set(payload["cells"]) == {f"unit/{i}" for i in range(4)}
        # Poison one cached value: a resumed run must take it verbatim,
        # proving the cell was skipped, not re-executed.
        payload["cells"]["unit/2"]["value"] = {"square": -1, "seed": 0}
        resume.write_text(json.dumps(payload))
        runner = GridRunner(jobs=1, resume=resume)
        results = runner.run(_grid())
        assert results["unit/2"]["square"] == -1
        assert all(o.cached for o in runner.outcomes)

    def test_resume_completes_partial_run(self, tmp_path):
        resume = tmp_path / "cells.json"
        GridRunner(jobs=1, resume=resume).run(_grid(2))
        runner = GridRunner(jobs=1, resume=resume)
        results = runner.run(_grid(4))
        assert len(results) == 4
        cached = {o.key for o in runner.outcomes if o.cached}
        assert cached == {"unit/0", "unit/1"}


class TestSeriesPayload:
    def test_round_trip(self):
        series = LifetimeSeries(label="x", points=[
            SamplePoint(0, 1.0, 1.0, 1.0),
            SamplePoint(500, 0.9, 0.8, 1.25)])
        rebuilt = LifetimeSeries.from_payload(series.to_payload(), label="x")
        assert rebuilt == series


class TestExperimentDeterminism:
    """The parallel runner must reproduce the serial runner bit-for-bit."""

    def test_fig5_parallel_matches_serial_exactly(self):
        serial = fig5.as_dict(fig5.run(scale="tiny",
                                       benchmarks=["ocean", "mg"],
                                       seed=1, jobs=1))
        pooled = fig5.as_dict(fig5.run(scale="tiny",
                                       benchmarks=["ocean", "mg"],
                                       seed=1, jobs=2))
        assert serial == pooled

    def test_fig5_seed_changes_results_deterministically(self):
        one = fig5.as_dict(fig5.run(scale="tiny", benchmarks=["ocean"],
                                    seed=1))
        again = fig5.as_dict(fig5.run(scale="tiny", benchmarks=["ocean"],
                                      seed=1))
        assert one == again


def _nap(seconds, payload):
    """Short sleeping cell for timing-accounting tests."""
    time.sleep(seconds)
    return {"payload": payload}


def _big(n, seed):
    """Cell with a payload large enough to ride shared memory."""
    return {"vals": list(range(seed, seed + n))}


class TestPoolQueueAccounting:
    """Queue seconds measure *per-future* wait, not grid-wide elapsed."""

    def test_single_worker_backlog_is_not_queue_time(self):
        cells = [Cell(key=f"nap/{i}", fn=f"{__name__}:_nap",
                      kwargs={"seconds": 0.05, "payload": i})
                 for i in range(8)]
        runner = GridRunner(jobs=1)
        results = {}
        runner._run_pool([], cells, results, {}, len(cells))
        assert len(results) == 8
        wall = sum(o.seconds for o in runner.outcomes)
        queue = sum(o.queue_seconds for o in runner.outcomes)
        assert wall > 0.3
        # Pre-fix, one grid-wide submit stamp meant cell k reported ~k
        # cells' worth of runtime as queue wait: on this single-worker
        # pool the queue total came out ~3.5x the wall total.  With
        # per-future stamps the backlog never counts as queue time.
        assert queue < 0.5 * wall


class TestResumeThrottle:
    """Resume saves are batched; every save is atomic and durable."""

    def test_serial_run_saves_once_per_batch(self, tmp_path, monkeypatch):
        resume = tmp_path / "cells.json"
        replaced = []
        real_replace = os.replace

        def counting_replace(src, dst, **kwargs):
            if Path(dst) == resume:
                replaced.append(dst)
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr(os, "replace", counting_replace)
        GridRunner(jobs=1, resume=resume).run(
            [Cell(key=f"unit/{i}", fn=f"{__name__}:_square",
                  kwargs=dict(value=i, seed=i)) for i in range(20)])
        # 20 cells at _SAVE_EVERY=8: saves after cells 8 and 16, plus the
        # final-cell flush — never one write per cell.
        assert len(replaced) == 3
        payload = json.loads(resume.read_text())
        assert len(payload["cells"]) == 20

    def test_partial_batch_is_flushed(self, tmp_path):
        resume = tmp_path / "cells.json"
        GridRunner(jobs=1, resume=resume).run(_grid(3))
        assert len(json.loads(resume.read_text())["cells"]) == 3

    def test_killed_run_leaves_absent_or_valid_resume(self, tmp_path):
        resume = tmp_path / "cells.json"
        root = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), str(root)]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        script = textwrap.dedent(f"""
            from repro.experiments.parallel import Cell, GridRunner
            GridRunner._SAVE_EVERY = 1  # maximize the save churn
            cells = [Cell(key=f"nap/{{i}}", fn="tests.test_parallel:_nap",
                          kwargs=dict(seconds=0.004, payload=i))
                     for i in range(500)]
            GridRunner(jobs=1, resume={str(resume)!r}).run(cells)
        """)
        for delay in (0.25, 0.4, 0.6):
            if resume.exists():
                resume.unlink()
            proc = subprocess.Popen([sys.executable, "-c", script],
                                    env=env, cwd=root)
            time.sleep(delay)
            proc.kill()
            proc.wait()
            if resume.exists():
                # Atomic replace: whatever survives the kill must parse.
                payload = json.loads(resume.read_text())
                assert isinstance(payload.get("cells"), dict)


class TestSharedMemoryTransport:
    def test_small_payloads_stay_raw(self):
        packed = pack_result({"a": 1})
        assert packed[0] == RAW
        assert unpack_result(packed) == {"a": 1}

    def test_large_payloads_round_trip_shared_memory(self):
        value = {"series": list(range(SHM_MIN_BYTES))}
        packed = pack_result(value)
        assert packed[0] == SHM
        assert unpack_result(packed) == value

    def test_unencodable_payloads_fall_back_to_raw(self):
        value = {"obj": object()}
        tag, body = pack_result(value)
        assert tag == RAW and body is value

    def test_pool_matches_serial_with_big_payloads(self):
        cells = [Cell(key=f"big/{i}", fn=f"{__name__}:_big",
                      kwargs={"n": 2000, "seed": i}) for i in range(3)]
        serial = GridRunner(jobs=1).run(cells)
        pooled = GridRunner(jobs=2).run(cells)
        assert serial == pooled


class TestBatchPlanning:
    def test_plan_groups_only_batchable_cells(self):
        campaign = [Cell(key=f"camp/{i}",
                         fn="repro.sim.campaign:campaign_cell",
                         kwargs={"seed": i}) for i in range(5)]
        other = _grid(3)
        groups, singles = GridRunner(batch=2)._plan(campaign + other)
        assert [[c.key for c in g] for g in groups] == [
            ["camp/0", "camp/1"], ["camp/2", "camp/3"]]
        # The leftover chunk of one and the unregistered cells stay single.
        assert {c.key for c in singles} == {
            "camp/4", "unit/0", "unit/1", "unit/2"}

    def test_batch_one_keeps_per_cell_path(self):
        pending = _grid(4)
        groups, singles = GridRunner(batch=1)._plan(pending)
        assert groups == [] and singles == pending

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            GridRunner(batch=0)
