"""Golden-trace regression: the instrumented run is byte-stable.

The fixture under ``tests/data/`` pins the exact JSONL bytes an
instrumented seeded lifetime emits.  Any drift — event reordering, a
field rename, a nondeterminism leak (wall-clock data, dict-order
dependence, RNG misuse) — fails these tests before it can silently
invalidate published traces.  Regenerate deliberately with::

    PYTHONPATH=src python -c "from repro.telemetry.golden import \\
        golden_trace; print(golden_trace(), end='')" \\
        > tests/data/golden_trace.jsonl

and note the regeneration in the commit message.
"""

from pathlib import Path

from repro.experiments.parallel import Cell, GridRunner
from repro.telemetry.golden import golden_cell, golden_trace
from repro.telemetry.trace import census, read_trace, run_meta

FIXTURE = Path(__file__).parent / "data" / "golden_trace.jsonl"


def test_fixture_is_a_valid_trace_with_meta():
    records = read_trace(FIXTURE)
    meta = run_meta(records)
    assert meta["seed"] == 2014
    assert meta["engine"] == "exact"
    counts = census(records)
    # The fixture must exercise the interesting protocol paths; a
    # regeneration that loses any of these events needs a new seed.
    for kind in ("link-install", "link-restore", "pointer-switch",
                 "inverse-rewrite", "page-retire", "crash", "recover"):
        assert counts.get(kind, 0) > 0, f"fixture lost all {kind} events"


def test_golden_run_reproduces_the_fixture_byte_identically():
    assert golden_trace() == FIXTURE.read_text()


def test_two_runs_are_byte_identical():
    # The second run goes through the GridRunner cell wrapper, proving
    # the cell function is a faithful in-process alias as well.
    assert golden_trace() == golden_cell()


def test_golden_run_is_identical_under_a_process_pool():
    """The trace must not depend on which process produced it: two pool
    workers (jobs=2) must both reproduce the fixture exactly."""
    runner = GridRunner(jobs=2)
    results = runner.run([
        Cell(key="golden/a", fn="repro.telemetry.golden:golden_cell",
             kwargs={}),
        Cell(key="golden/b", fn="repro.telemetry.golden:golden_cell",
             kwargs={}),
    ])
    fixture = FIXTURE.read_text()
    assert results["golden/a"] == fixture
    assert results["golden/b"] == fixture
