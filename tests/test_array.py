"""The shard-array layer: decoder, segmented traces, array campaigns.

The integration tests run real 4-shard campaigns at a deliberately tiny
scale (240 software blocks per shard, endurance 150-250) so a full
degraded lifecycle — every shard worn to death, traffic re-decoded after
each casualty — finishes in well under a second.
"""

import json

import numpy as np
import pytest

from repro.array import (ArrayConfig, ArrayEngine, InterleavedDecoder,
                         SegmentedTrace, deterministic_snapshot,
                         hotspot_workload, shard_attack_workload,
                         shard_seed, uniform_workload)
from repro.array.__main__ import main as array_main
from repro.errors import ConfigurationError
from repro.faultinject import shard_death_schedule

PAGE = 16


def make_decoder(shards=4, blocks=240, interleave="block"):
    return InterleavedDecoder(shards, blocks, interleave=interleave,
                              page_blocks=PAGE)


def make_config(**overrides):
    base = dict(num_shards=4, shard_blocks=256, page_blocks=PAGE,
                mean_endurance=150.0, psi=8, batch_writes=1_000, seed=7)
    base.update(overrides)
    return ArrayConfig(**base)


# ----------------------------------------------------------------- decoder


class TestInterleavedDecoder:
    @pytest.mark.parametrize("interleave", ["block", "page"])
    def test_decode_encode_is_a_bijection(self, interleave):
        decoder = make_decoder(interleave=interleave)
        blocks = np.arange(decoder.global_blocks, dtype=np.int64)
        shards, locals_ = decoder.decode(blocks)
        assert shards.min() >= 0 and shards.max() < 4
        assert locals_.min() >= 0 and locals_.max() < 240
        back = decoder.encode(shards, locals_)
        np.testing.assert_array_equal(back, blocks)
        # Every (shard, local) pair is hit exactly once.
        pairs = set(zip(shards.tolist(), locals_.tolist()))
        assert len(pairs) == decoder.global_blocks

    @pytest.mark.parametrize("interleave", ["block", "page"])
    def test_uniform_traffic_splits_evenly(self, interleave):
        decoder = make_decoder(interleave=interleave)
        probabilities = np.full(decoder.global_blocks,
                                1.0 / decoder.global_blocks)
        masses = decoder.shard_masses(probabilities)
        np.testing.assert_allclose(masses, 0.25)

    def test_page_mode_keeps_pages_whole(self):
        decoder = make_decoder(interleave="page")
        blocks = np.arange(decoder.global_blocks, dtype=np.int64)
        shards, locals_ = decoder.decode(blocks)
        # All blocks of one global page land on one shard.
        for page_start in range(0, decoder.global_blocks, PAGE):
            page_shards = shards[page_start:page_start + PAGE]
            assert len(set(page_shards.tolist())) == 1

    def test_local_mass_partitions_the_distribution(self):
        decoder = make_decoder()
        rng = np.random.default_rng(3)
        probabilities = rng.random(decoder.global_blocks)
        probabilities /= probabilities.sum()
        masses = [decoder.local_mass(probabilities, s) for s in range(4)]
        assert sum(float(m.sum()) for m in masses) == pytest.approx(1.0)
        for shard, mass in enumerate(masses):
            assert float(mass.sum()) == pytest.approx(
                float(decoder.shard_masses(probabilities)[shard]))

    @pytest.mark.parametrize("bad", [
        dict(num_shards=0, shard_blocks=240),
        dict(num_shards=4, shard_blocks=0),
        dict(num_shards=4, shard_blocks=240, interleave="stripe"),
        # Page interleaving requires whole pages per shard.
        dict(num_shards=4, shard_blocks=250, interleave="page"),
        dict(num_shards=4, shard_blocks=240, page_blocks=0),
    ])
    def test_invalid_geometry_is_rejected(self, bad):
        kwargs = dict(page_blocks=PAGE)
        kwargs.update(bad)
        with pytest.raises(ConfigurationError):
            InterleavedDecoder(**kwargs)

    def test_probability_shape_is_checked(self):
        decoder = make_decoder()
        with pytest.raises(ConfigurationError):
            decoder.shard_masses(np.ones(decoder.global_blocks - 1))


# ---------------------------------------------------------- segmented trace


class TestSegmentedTrace:
    def test_single_segment_draws_like_its_distribution(self):
        probabilities = np.array([0.5, 0.25, 0.25])
        trace = SegmentedTrace([(0, probabilities)], name="t", seed=3)
        counts = trace.batch_counts(10_000)
        assert counts.sum() == 10_000
        assert counts[0] > counts[1]

    def test_batches_split_at_segment_boundaries(self):
        first = np.array([1.0, 0.0])
        second = np.array([0.0, 1.0])
        trace = SegmentedTrace([(0, first), (100, second)], name="t",
                               seed=3)
        counts = trace.batch_counts(150)
        # 100 draws from the first table, 50 from the second.
        np.testing.assert_array_equal(counts, [100, 50])

    def test_prefix_replay_is_byte_identical(self):
        rng = np.random.default_rng(11)
        table_a = rng.random(32)
        table_a /= table_a.sum()
        table_b = rng.random(32)
        table_b /= table_b.sum()
        short = SegmentedTrace([(0, table_a)], name="s", seed=9)
        extended = SegmentedTrace([(0, table_a), (3_000, table_b)],
                                  name="s", seed=9)
        # Appending a future segment must not disturb earlier epochs.
        for _ in range(3):
            np.testing.assert_array_equal(short.batch_counts(1_000),
                                          extended.batch_counts(1_000))

    def test_reset_restarts_the_stream(self):
        table = np.full(8, 0.125)
        trace = SegmentedTrace([(0, table)], name="t", seed=5)
        first = trace.batch_counts(500)
        trace.reset()
        np.testing.assert_array_equal(first, trace.batch_counts(500))

    def test_restricted_to_folds_each_segment(self):
        table = np.array([0.1, 0.2, 0.3, 0.4])
        trace = SegmentedTrace([(0, table), (50, table[::-1].copy())],
                               name="t", seed=5)
        folded = trace.restricted_to(2)
        assert folded.num_segments == 2
        counts = folded.batch_counts(1_000)
        assert counts.shape == (2,)
        assert counts.sum() == 1_000

    @pytest.mark.parametrize("segments", [
        [],
        [(5, np.array([1.0]))],                       # first start != 0
        [(0, np.array([1.0])), (0, np.array([1.0]))],  # not increasing
        [(0, np.array([0.5, 0.5])), (10, np.array([1.0]))],  # width
        [(0, np.array([0.0, 0.0]))],                  # no mass
        [(0, np.array([0.5, -0.5]))],                 # negative
    ])
    def test_invalid_segment_tables_are_rejected(self, segments):
        with pytest.raises(ConfigurationError):
            SegmentedTrace(segments, name="bad", seed=1)


# ------------------------------------------------------------ configuration


class TestArrayConfig:
    def test_software_blocks_excludes_the_gap_page(self):
        assert make_config().software_blocks == 240

    @pytest.mark.parametrize("bad", [
        dict(policy="explode"),
        dict(interleave="stripe"),
        dict(num_shards=0),
        dict(shard_blocks=PAGE),  # below two OS pages
    ])
    def test_invalid_configurations_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            make_config(**bad)

    def test_shard_seeds_are_stable_and_distinct(self):
        seeds = [shard_seed(7, i) for i in range(4)]
        assert seeds == [shard_seed(7, i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds != [shard_seed(8, i) for i in range(4)]

    def test_undersized_trace_is_rejected(self):
        config = make_config()
        small = uniform_workload(make_decoder(shards=2, blocks=240))
        with pytest.raises(ConfigurationError, match="decodes"):
            ArrayEngine(config, small)


# ------------------------------------------------------------ end of life


def run_array(jobs=1, policy="degraded", schedule=None, workload="hotspot",
              **overrides):
    config = make_config(policy=policy, **overrides)
    decoder = make_decoder(shards=config.num_shards,
                           blocks=config.software_blocks)
    if workload == "hotspot":
        trace = hotspot_workload(decoder, cov=3.0, seed=7)
    elif workload == "attack":
        trace = shard_attack_workload(decoder, shard=0, hot_share=0.9,
                                      seed=7)
    else:
        trace = uniform_workload(decoder, seed=7)
    engine = ArrayEngine(config, trace, label="t", jobs=jobs,
                         schedule=schedule)
    return engine.run()


class TestArrayEndOfLife:
    def test_degraded_array_outlives_every_shard(self):
        result = run_array()
        report = result.report
        assert report.stop is not None
        assert report.stop.cause.value == "exhausted"
        assert sorted(report.dead_shards) == [0, 1, 2, 3]
        assert report.usable_fraction == 0.0
        assert report.num_shards == 4 and len(report.shards) == 4
        # The merged series ends with the array fully unusable.
        assert result.series.points[-1].usable == 0.0
        # Census shares cover the whole distribution initially.
        assert sum(c.share for c in report.shards) == pytest.approx(1.0)

    def test_forced_shard_death_degrades_but_serves(self):
        schedule = shard_death_schedule(2, at_write=3_000, num_blocks=256)
        result = run_array(schedule=schedule, workload="uniform",
                           mean_endurance=200.0)
        report = result.report
        # The killed shard dies first, at its injected local time.
        assert report.dead_shards[0] == 2
        victim = report.shards[2]
        assert victim.local_writes == 3_000
        assert victim.died_at_global is not None
        # The array kept serving well past the casualty...
        assert report.total_writes > victim.died_at_global
        # ...at reduced capacity: usable drops to 3/4 after the death.
        after = result.series.usable_at(victim.died_at_global + 1)
        assert after == pytest.approx(0.75, abs=0.05)
        # The survivors inherited the victim's share.
        final = [c.final_share for c in report.shards]
        assert final[2] == 0.0
        assert sum(final) == pytest.approx(1.0)

    def test_fail_stop_dies_with_its_first_shard(self):
        schedule = shard_death_schedule(2, at_write=3_000, num_blocks=256)
        result = run_array(policy="fail-stop", schedule=schedule,
                           workload="uniform", mean_endurance=200.0)
        report = result.report
        assert report.stop is not None
        assert report.stop.cause.value == "shard-failed"
        assert "shard 2" in report.stop.detail
        assert report.dead_shards == (2,)
        # Survivors are truncated at the death epoch, still alive.
        for census in report.shards:
            if census.shard != 2:
                assert census.stop == "max-writes"
                assert census.died_at_global is None

    def test_global_budget_stops_a_healthy_array(self):
        result = run_array(workload="uniform", max_writes=8_000,
                           mean_endurance=250.0)
        report = result.report
        assert report.stop is not None
        assert report.stop.cause.value == "max-writes"
        assert report.dead_shards == ()
        assert report.usable_fraction == 1.0

    def test_attack_kills_the_victim_shard_first(self):
        result = run_array(workload="attack")
        assert result.report.dead_shards[0] == 0


class TestArrayDeterminism:
    def test_result_is_invariant_under_jobs(self):
        schedule = shard_death_schedule(1, at_write=2_000, num_blocks=256)
        serial = run_array(jobs=1, schedule=schedule)
        pooled = run_array(jobs=2, schedule=schedule)
        assert json.dumps(serial.snapshot, sort_keys=True) == \
            json.dumps(pooled.snapshot, sort_keys=True)
        assert serial.report.as_dict() == pooled.report.as_dict()
        assert serial.series.to_payload() == pooled.series.to_payload()

    def test_snapshot_carries_array_and_shard_counters(self):
        result = run_array()
        counters = result.snapshot["counters"]
        assert counters["array.shard-deaths"] == 4
        assert counters["array.writes"] == result.report.total_writes
        assert result.snapshot["gauges"]["array.shards-live"] == 0
        # Wall-clock phase timers must not leak into the merged snapshot.
        assert not any(name.endswith(".seconds") for name in counters)

    def test_deterministic_snapshot_strips_phase_seconds(self):
        snapshot = {"counters": {"phase.run.seconds": 0.5,
                                 "phase.run.calls": 3, "writes": 9},
                    "gauges": {"peak": 2}, "histograms": {}}
        cleaned = deterministic_snapshot(snapshot)
        assert cleaned["counters"] == {"phase.run.calls": 3, "writes": 9}
        assert cleaned["gauges"] == {"peak": 2}


# ----------------------------------------------------------------- the CLI


class TestArrayCli:
    def test_main_renders_a_census(self, capsys, tmp_path):
        out = tmp_path / "array.json"
        code = array_main(["--shards", "2", "--shard-blocks", "256",
                           "--page-blocks", "16", "--mean", "200",
                           "--batch-writes", "1000", "--workload",
                           "uniform", "--max-writes", "6000",
                           "--jobs", "2", "--json", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "array[2x]" in captured.out
        assert "s0:" in captured.out and "s1:" in captured.out
        payload = json.loads(out.read_text())
        assert payload["num_shards"] == 2
        assert payload["report"]["stop"].startswith("max-writes")

    def test_kill_flag_injects_a_shard_death(self, capsys):
        code = array_main(["--shards", "2", "--shard-blocks", "256",
                           "--page-blocks", "16", "--mean", "200",
                           "--batch-writes", "1000", "--workload",
                           "uniform", "--kill-shard", "0",
                           "--kill-at", "2000"])
        assert code == 0
        captured = capsys.readouterr()
        assert "dead shards: 0" in captured.out
