"""Tests for the order-statistics endurance model, incl. statistical checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import ConfigurationError
from repro.pcm import EnduranceModel, sample_failure_times


class TestSampleFailureTimes:
    def test_shape_and_dtype(self):
        times = sample_failure_times(100, 512, 1e4, 0.2, 5, rng=1)
        assert times.shape == (100, 5)
        assert times.dtype == np.int64

    def test_rows_are_nondecreasing(self):
        times = sample_failure_times(500, 512, 1e4, 0.2, 8, rng=2)
        assert (np.diff(times, axis=1) >= 0).all()

    def test_values_positive(self):
        times = sample_failure_times(500, 512, 1e3, 0.3, 8, rng=3)
        assert (times >= 1).all()

    def test_deterministic_per_seed(self):
        a = sample_failure_times(50, 512, 1e4, 0.2, 4, rng=7)
        b = sample_failure_times(50, 512, 1e4, 0.2, 4, rng=7)
        assert (a == b).all()

    def test_seed_changes_sample(self):
        a = sample_failure_times(50, 512, 1e4, 0.2, 4, rng=7)
        b = sample_failure_times(50, 512, 1e4, 0.2, 4, rng=8)
        assert not (a == b).all()

    def test_first_order_statistic_distribution(self):
        """The sampled minimum matches the analytic min-of-n distribution.

        For n i.i.d. normals, P(min <= t) = 1 - (1 - Phi(z))^n.  A KS test
        against that CDF on the first order statistic validates the
        sequential-beta construction end to end.
        """
        mean, cov, n = 1e4, 0.2, 512
        sd = mean * cov
        times = sample_failure_times(4000, n, mean, cov, 1, rng=5)[:, 0]

        def cdf(t):
            return 1.0 - (1.0 - stats.norm.cdf((t - mean) / sd)) ** n

        result = stats.kstest(times, cdf)
        assert result.pvalue > 0.01, result

    def test_higher_orders_have_higher_means(self):
        times = sample_failure_times(2000, 512, 1e4, 0.2, 8, rng=6)
        means = times.mean(axis=0)
        assert (np.diff(means) > 0).all()

    @pytest.mark.parametrize("k", [0, -1, 600])
    def test_rejects_bad_k(self, k):
        with pytest.raises(ConfigurationError):
            sample_failure_times(10, 512, 1e4, 0.2, k)


class TestEnduranceModel:
    def test_materializes_max_order(self):
        model = EnduranceModel(num_blocks=64, mean=1e3, max_order=10, seed=1)
        assert model.failure_times.shape == (64, 10)

    def test_nth_failure_bounds(self):
        model = EnduranceModel(num_blocks=64, mean=1e3, max_order=10, seed=1)
        with pytest.raises(ConfigurationError):
            model.nth_failure(0)
        with pytest.raises(ConfigurationError):
            model.nth_failure(11)

    def test_uncorrectable_threshold_is_shifted_order(self):
        model = EnduranceModel(num_blocks=64, mean=1e3, max_order=10, seed=1)
        assert (model.uncorrectable_threshold(0)
                == model.nth_failure(1)).all()
        assert (model.uncorrectable_threshold(6)
                == model.nth_failure(7)).all()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(num_blocks=8, mean=0)
        with pytest.raises(ConfigurationError):
            EnduranceModel(num_blocks=8, cov=1.0)

    @given(capacity=st.integers(min_value=0, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_more_correction_never_hurts(self, capacity):
        """Property: a stronger code's threshold dominates a weaker one's."""
        model = EnduranceModel(num_blocks=32, mean=1e3, max_order=10, seed=4)
        weaker = model.uncorrectable_threshold(capacity)
        stronger = model.uncorrectable_threshold(capacity + 1)
        assert (stronger >= weaker).all()
