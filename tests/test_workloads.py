"""Unit tests for the workload package: generators, trace files, shards,
FTL write-amplification accounting, the CLI, and the cross-stack
equivalence pin (one recorded trace drives serve and array with
byte-identical per-shard address sequences)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.array import trace_workload
from repro.array.decoder import InterleavedDecoder
from repro.array.__main__ import trace_digest_lines
from repro.array.engine import ArrayConfig
from repro.errors import ConfigurationError
from repro.serve import ServeConfig, ServiceEngine
from repro.workloads import (CHUNK, FTLConfig, PageMappingFTL, Phase,
                             PhasedWorkload, TraceMeta, TraceReader,
                             TraceReplay, canonical_bytes, check_canonical,
                             convert_msr, fold_addresses,
                             per_shard_streams, phase_shifting_hotspot,
                             read_meta, read_msr_csv, record_workload,
                             sequential_workload, shard_digests,
                             stream_digest, uniform_workload, write_records,
                             zipf_workload)
from repro.workloads.__main__ import main as workloads_main
from repro.workloads.convert import parse_msr_row

GOLDEN = Path(__file__).parent / "data" / "golden_workload.trace"
MSR_SAMPLE = Path(__file__).parent / "data" / "msr_sample.csv"


# ------------------------------------------------------------- generators


class TestGenerators:
    def test_take_shape_and_dtype(self):
        records = uniform_workload(32, seed=1).take(100)
        assert records.shape == (100, 2)
        assert records.dtype == np.int64
        assert records[:, 0].min() >= 0 and records[:, 0].max() < 32
        assert set(np.unique(records[:, 1])) <= {0, 1}

    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            Phase(0, np.ones(4))
        with pytest.raises(ConfigurationError):
            Phase(10, np.ones(4), write_ratio=1.5)
        with pytest.raises(ConfigurationError):
            Phase(10, np.zeros(4))

    def test_phased_workload_needs_phases(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload([])

    def test_phases_must_share_the_space(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload([Phase(10, np.ones(4)), Phase(10, np.ones(8))])

    def test_reset_replays_identically(self):
        workload = zipf_workload(64, seed=5)
        first = workload.take(300)
        workload.reset()
        assert np.array_equal(first, workload.take(300))

    def test_then_preserves_the_prefix(self):
        base = phase_shifting_hotspot(64, phases=2, phase_requests=200,
                                      seed=9)
        extra = phase_shifting_hotspot(64, phases=1, phase_requests=100,
                                       seed=9)
        prefix = base.take(400)
        combined = base.then(extra)
        assert np.array_equal(prefix, combined.take(400))

    def test_then_rejects_mismatched_spaces(self):
        with pytest.raises(ConfigurationError):
            uniform_workload(16).then(uniform_workload(32))

    def test_cycle_wraps_with_fresh_streams(self):
        workload = uniform_workload(16, requests=50, seed=2)
        two_cycles = workload.take(100)
        # The second cycle draws from a different derived stream.
        assert not np.array_equal(two_cycles[:50], two_cycles[50:])

    def test_sequential_addresses_are_arithmetic(self):
        workload = sequential_workload(10, start=3, stride=4, seed=1)
        addresses = workload.take(25)[:, 0]
        expected = (3 + 4 * np.arange(25)) % 10
        assert np.array_equal(addresses, expected)

    def test_sequential_rejects_zero_stride(self):
        with pytest.raises(ConfigurationError):
            sequential_workload(10, stride=0)

    def test_hotspot_rotates_per_phase(self):
        workload = phase_shifting_hotspot(100, phases=4,
                                          phase_requests=2000,
                                          hot_share=1.0, seed=3)
        segments = workload.segments()
        assert [start for start, _ in segments] == [0, 2000, 4000, 6000]
        hot_sets = [set(np.flatnonzero(table)) for _, table in segments]
        assert all(a != b for a, b in zip(hot_sets, hot_sets[1:]))

    def test_hotspot_validation(self):
        with pytest.raises(ConfigurationError):
            phase_shifting_hotspot(100, phases=0)
        with pytest.raises(ConfigurationError):
            phase_shifting_hotspot(100, hot_fraction=1.0)

    def test_stationary_weights_by_requests(self):
        workload = phase_shifting_hotspot(50, phases=2, phase_requests=100,
                                          hot_share=1.0, seed=4)
        stationary = workload.stationary()
        total = np.zeros(50)
        for _, table in workload.segments():
            total += 100 * table
        assert np.allclose(stationary.probabilities, total / total.sum())

    def test_negative_take_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_workload(8).take(-1)


# ------------------------------------------------------------- trace files


class TestTraceMeta:
    def test_encode_decode_roundtrip(self):
        meta = TraceMeta(name="t", virtual_blocks=8, requests=10,
                         epoch_requests=4, write_ratio=0.5,
                         extra={"seed": 7})
        assert TraceMeta.decode(meta.encode()) == meta

    def test_epochs_is_a_ceiling(self):
        meta = TraceMeta(name="t", virtual_blocks=8, requests=10,
                         epoch_requests=4, write_ratio=0.5)
        assert meta.epochs == 3

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            TraceMeta(name="t", virtual_blocks=0, requests=1,
                      epoch_requests=1, write_ratio=0.5)
        with pytest.raises(ConfigurationError):
            TraceMeta(name="t", virtual_blocks=1, requests=1,
                      epoch_requests=1, write_ratio=2.0)
        with pytest.raises(ConfigurationError):
            TraceMeta(name="t", virtual_blocks=1, requests=1,
                      epoch_requests=1, write_ratio=0.5,
                      extra={"requests": 9})

    def test_rejects_bad_headers(self):
        with pytest.raises(ConfigurationError):
            TraceMeta.decode("not a header")
        with pytest.raises(ConfigurationError):
            TraceMeta.decode("#REPRO-WORKLOAD v9 {}")
        with pytest.raises(ConfigurationError):
            TraceMeta.decode('#REPRO-WORKLOAD v1 {"name":"x"}')
        with pytest.raises(ConfigurationError):
            TraceMeta.decode("#REPRO-WORKLOAD v1 {broken")


class TestTraceFile:
    def _record(self, tmp_path, **kwargs):
        path = tmp_path / "w.trace"
        workload = zipf_workload(64, requests=200, seed=13)
        meta = record_workload(path, workload, 200, epoch_requests=50,
                               **kwargs)
        return path, meta

    def test_record_then_load_roundtrip(self, tmp_path):
        path, meta = self._record(tmp_path)
        replay = TraceReplay.load(path)
        assert replay.meta == meta
        fresh = zipf_workload(64, requests=200, seed=13)
        assert np.array_equal(replay.records, fresh.take(200))

    def test_recorded_file_is_canonical(self, tmp_path):
        path, _ = self._record(tmp_path)
        assert check_canonical(path)

    def test_mutated_file_is_not_canonical(self, tmp_path):
        path, _ = self._record(tmp_path)
        # Same logical content, different bytes (CRLF line ending).
        data = path.read_bytes().replace(b"\n", b"\r\n", 1)
        path.write_bytes(data)
        assert not check_canonical(path)

    def test_seek_epoch_matches_slice(self, tmp_path):
        path, meta = self._record(tmp_path)
        replay = TraceReplay.load(path)
        with TraceReader(path) as reader:
            reader.seek_epoch(2)
            tail = np.array(list(reader.records()), dtype=np.int64)
        assert np.array_equal(tail, replay.records[2 * 50:])

    def test_seek_backward_uses_the_index(self, tmp_path):
        path, _ = self._record(tmp_path)
        with TraceReader(path) as reader:
            reader.seek_epoch(3)
            reader.seek_epoch(1)
            first = next(reader.records())
        replay = TraceReplay.load(path)
        assert first[0] == replay.records[50, 0]

    def test_seek_epoch_out_of_range(self, tmp_path):
        path, _ = self._record(tmp_path)
        with TraceReader(path) as reader:
            with pytest.raises(ConfigurationError):
                reader.seek_epoch(4)
            with pytest.raises(ConfigurationError):
                reader.seek_epoch(-1)

    def test_read_all_detects_truncation(self, tmp_path):
        path, _ = self._record(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-5]))
        with TraceReader(path) as reader:
            with pytest.raises(ConfigurationError):
                reader.read_all()

    def test_write_records_validates(self, tmp_path):
        meta = TraceMeta(name="t", virtual_blocks=4, requests=2,
                         epoch_requests=2, write_ratio=0.5)
        with pytest.raises(ConfigurationError):
            write_records(tmp_path / "bad.trace",
                          np.array([[9, 1], [0, 0]]), meta)
        with pytest.raises(ConfigurationError):
            write_records(tmp_path / "bad.trace",
                          np.array([[1, 2], [0, 0]]), meta)
        with pytest.raises(ConfigurationError):
            canonical_bytes(meta, np.array([[1, 1]]))

    def test_read_meta(self, tmp_path):
        path, meta = self._record(tmp_path, extra={"kind": "zipf"})
        parsed = read_meta(path)
        assert parsed == meta
        assert parsed.extra["kind"] == "zipf"


class TestTraceReplay:
    def test_wrap_around(self, tmp_path):
        path = tmp_path / "w.trace"
        record_workload(path, uniform_workload(8, seed=1), 10,
                        epoch_requests=10)
        replay = TraceReplay.load(path)
        doubled = replay.take(20)
        assert np.array_equal(doubled[:10], doubled[10:])
        assert replay.cycle_total() == 10

    def test_write_distribution_counts_only_writes(self, tmp_path):
        path = tmp_path / "w.trace"
        record_workload(path, uniform_workload(8, write_ratio=1.0, seed=1),
                        30, epoch_requests=30)
        replay = TraceReplay.load(path)
        counts = replay.write_distribution()
        assert counts.sum() == 30
        assert len(replay.write_addresses()) == 30

    def test_all_read_trace_has_no_write_distribution(self, tmp_path):
        path = tmp_path / "r.trace"
        record_workload(path, uniform_workload(8, write_ratio=0.0, seed=1),
                        10, epoch_requests=10)
        with pytest.raises(ConfigurationError):
            TraceReplay.load(path).write_distribution()


# -------------------------------------------------------------------- FTL


class TestFTL:
    def make(self, policy="greedy"):
        return PageMappingFTL(FTLConfig(logical_pages=96, physical_blocks=8,
                                        pages_per_block=32,
                                        gc_policy=policy))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FTLConfig(logical_pages=256, physical_blocks=5,
                      pages_per_block=64)  # below the OP floor
        with pytest.raises(ConfigurationError):
            FTLConfig(logical_pages=16, physical_blocks=4,
                      pages_per_block=16, gc_policy="lru")
        with pytest.raises(ConfigurationError):
            FTLConfig(logical_pages=16, physical_blocks=4,
                      pages_per_block=16, gc_free_blocks=1)

    def test_over_provisioning(self):
        config = FTLConfig(logical_pages=96, physical_blocks=8,
                           pages_per_block=32)
        assert config.physical_pages == 256
        assert config.over_provisioning == pytest.approx(256 / 96 - 1)

    def test_program_count_identity(self):
        ftl = self.make()
        rng = np.random.default_rng(1)
        ftl.replay(rng.integers(0, 96, size=5000))
        assert len(ftl.programmed) == ftl.host_writes + ftl.gc_writes
        assert ftl.host_writes == 5000
        assert ftl.wa_ratio() == pytest.approx(
            len(ftl.programmed) / 5000)
        assert ftl.wa_ratio() > 1.0

    def test_mapping_stays_consistent(self):
        ftl = self.make("cost-benefit")
        rng = np.random.default_rng(2)
        ftl.replay(rng.integers(0, 96, size=3000))
        mapped = ftl.l2p[ftl.l2p >= 0]
        # L2P and P2L are inverse on the live pages.
        assert np.array_equal(
            ftl.p2l[mapped], np.flatnonzero(ftl.l2p >= 0))
        # Valid counters match the live pages per block.
        per_block = np.bincount(mapped // 32, minlength=8)
        assert np.array_equal(per_block, ftl.valid)

    def test_policies_select_different_victims(self):
        streams = {}
        addresses = np.concatenate([
            np.zeros(2000, dtype=np.int64),  # one scorching page
            np.arange(96).repeat(30)])
        for policy in ("greedy", "cost-benefit"):
            ftl = self.make(policy)
            ftl.replay(addresses)
            streams[policy] = (ftl.gc_writes, tuple(ftl.programmed))
        assert streams["greedy"] != streams["cost-benefit"]

    def test_host_write_range_check(self):
        with pytest.raises(ConfigurationError):
            self.make().host_write(96)

    def test_replay_is_deterministic(self):
        addresses = np.random.default_rng(3).integers(0, 96, size=4000)
        a = self.make().replay(addresses)
        b = self.make().replay(addresses)
        assert np.array_equal(a, b)

    def test_note_epoch_series_sums_to_totals(self):
        ftl = self.make()
        addresses = np.random.default_rng(4).integers(0, 96, size=2048)
        ftl.replay(addresses, epoch_writes=512)
        assert len(ftl.epoch_series) == 4
        assert sum(r["host_writes"] for r in ftl.epoch_series) == 2048
        assert sum(r["gc_writes"] for r in ftl.epoch_series) \
            == ftl.gc_writes
        assert ftl.replay(np.empty(0, dtype=np.int64)).size == 0

    def test_replay_rejects_bad_epoch(self):
        with pytest.raises(ConfigurationError):
            self.make().replay(np.zeros(4, dtype=np.int64), epoch_writes=0)


# ------------------------------------------------------------------ shards


class TestShards:
    def test_partition_preserves_order_and_mass(self):
        decoder = InterleavedDecoder(4, 16)
        addresses = np.arange(64, dtype=np.int64)[::-1]
        streams = per_shard_streams(addresses, decoder)
        assert sum(len(s) for s in streams) == 64
        for stream in streams:
            assert len(stream) == 16

    def test_rejects_out_of_range(self):
        decoder = InterleavedDecoder(2, 8)
        with pytest.raises(ConfigurationError):
            per_shard_streams(np.array([99]), decoder)
        with pytest.raises(ConfigurationError):
            per_shard_streams(np.zeros((2, 2), dtype=np.int64), decoder)

    def test_digest_is_content_addressed(self):
        a = stream_digest(np.array([1, 2, 3]))
        assert a == stream_digest(np.array([1, 2, 3]))
        assert a != stream_digest(np.array([3, 2, 1]))

    def test_shard_digests_table(self):
        decoder = InterleavedDecoder(2, 8)
        digests = shard_digests(np.arange(16, dtype=np.int64), decoder)
        assert set(digests) == {0, 1}
        streams = per_shard_streams(np.arange(16, dtype=np.int64), decoder)
        assert digests[0] == stream_digest(streams[0])


# ----------------------------------------------------------------- golden


class TestGoldenFixture:
    """The stored fixture pins the format and the generator bytes.

    Regenerate deliberately with::

        PYTHONPATH=src python -m repro.workloads record --kind zipf \\
            --blocks 256 --requests 1024 --seed 2014 --name golden \\
            --epoch 256 --out tests/data/golden_workload.trace
    """

    def test_fixture_is_canonical(self):
        assert check_canonical(GOLDEN)

    def test_generator_reproduces_the_fixture_byte_identically(
            self, tmp_path):
        out = tmp_path / "regen.trace"
        code = workloads_main([
            "record", "--kind", "zipf", "--blocks", "256",
            "--requests", "1024", "--seed", "2014", "--name", "golden",
            "--epoch", "256", "--out", str(out)])
        assert code == 0
        assert out.read_bytes() == GOLDEN.read_bytes()

    def test_fixture_meta(self):
        meta = read_meta(GOLDEN)
        assert meta.name == "golden"
        assert meta.virtual_blocks == 256
        assert meta.requests == 1024
        assert meta.extra == {"kind": "zipf", "seed": 2014}


# -------------------------------------------------------------------- CLI


class TestCli:
    def test_generate_text_and_json(self, capsys):
        assert workloads_main(["generate", "--kind", "uniform", "--blocks",
                               "16", "--requests", "64", "--head", "3"]) == 0
        out = capsys.readouterr().out
        assert "64 requests over 16 blocks" in out
        assert workloads_main(["generate", "--kind", "sequential",
                               "--blocks", "16", "--requests", "64",
                               "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["requests"] == 64

    def test_record_replay_describe(self, tmp_path, capsys):
        out = tmp_path / "cli.trace"
        assert workloads_main(["record", "--kind", "hotshift", "--blocks",
                               "64", "--requests", "256", "--epoch", "64",
                               "--out", str(out)]) == 0
        capsys.readouterr()
        assert workloads_main(["replay", str(out), "--check",
                               "--digests", "--shards", "2"]) == 0
        text = capsys.readouterr().out
        assert "canonical: ok" in text and "s0:" in text
        assert workloads_main(["describe", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["requests"] == 256

    def test_replay_epoch_window(self, tmp_path, capsys):
        out = tmp_path / "cli.trace"
        workloads_main(["record", "--blocks", "64", "--requests", "256",
                        "--epoch", "64", "--out", str(out)])
        capsys.readouterr()
        assert workloads_main(["replay", str(out), "--epoch", "3",
                               "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["requests"] == 64

    def test_non_canonical_file_fails_check(self, tmp_path, capsys):
        out = tmp_path / "cli.trace"
        workloads_main(["record", "--blocks", "16", "--requests", "32",
                        "--out", str(out)])
        data = out.read_text()
        out.write_text(data + "\n")  # trailing blank line
        capsys.readouterr()
        assert workloads_main(["replay", str(out), "--check"]) == 2

    def test_epoch_out_of_range_is_exit_2(self, tmp_path, capsys):
        out = tmp_path / "cli.trace"
        workloads_main(["record", "--blocks", "16", "--requests", "32",
                        "--out", str(out)])
        capsys.readouterr()
        assert workloads_main(["replay", str(out), "--epoch", "99"]) == 2

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.trace"
        assert workloads_main(["describe", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------- MSR conversion


class TestConvert:
    def test_row_spans_every_touched_block(self):
        # 8 KiB starting mid-block at 4 KiB granularity: 3 blocks.
        requests = parse_msr_row("1,host,0,6144,8192,Write", 1, 4096)
        assert requests == [(1, True), (2, True), (3, True)]
        requests = parse_msr_row("1,host,0,4096,4096,Read", 1, 4096)
        assert requests == [(1, False)]

    def test_size_zero_touches_the_offset_block(self):
        assert parse_msr_row("1,h,0,8192,0,Read", 1, 4096) == [(2, False)]

    def test_tag_spellings(self):
        for tag in ("W", "write", "WS"):
            assert parse_msr_row(f"1,h,0,0,1,{tag}", 1, 4096)[0][1] is True
        for tag in ("R", "Read", "rs"):
            assert parse_msr_row(f"1,h,0,0,1,{tag}", 1, 4096)[0][1] is False

    def test_malformed_rows_are_rejected(self):
        with pytest.raises(ConfigurationError, match="6 CSV fields"):
            parse_msr_row("1,2,3", 7, 4096)
        with pytest.raises(ConfigurationError, match="must be integers"):
            parse_msr_row("1,h,0,abc,1,R", 7, 4096)
        with pytest.raises(ConfigurationError, match="negative"):
            parse_msr_row("1,h,0,-1,1,R", 7, 4096)
        with pytest.raises(ConfigurationError, match="unknown request"):
            parse_msr_row("1,h,0,0,1,flush", 7, 4096)

    def test_read_skips_header_comments_and_blanks(self, tmp_path):
        src = tmp_path / "t.csv"
        src.write_text("timestamp,host,disk,offset,size,type\n"
                       "# a comment\n\n"
                       "100,h,0,0,4096,Write\n"
                       "101,h,0,4096,4096,Read\n")
        records = read_msr_csv(src)
        assert records.tolist() == [[0, 1], [1, 0]]

    def test_empty_file_is_an_error(self, tmp_path):
        src = tmp_path / "empty.csv"
        src.write_text("# nothing here\n")
        with pytest.raises(ConfigurationError, match="no requests"):
            read_msr_csv(src)

    def test_fold_wraps_or_sizes_to_max(self):
        records = np.array([[5, 1], [1029, 0]], dtype=np.int64)
        folded, blocks = fold_addresses(records, 1024)
        assert blocks == 1024
        assert folded[:, 0].tolist() == [5, 5]
        sized, blocks = fold_addresses(records, None)
        assert blocks == 1030
        assert sized[:, 0].tolist() == [5, 1029]
        with pytest.raises(ConfigurationError, match="positive"):
            fold_addresses(records, 0)

    def test_fixture_converts_to_the_pinned_shape(self, tmp_path):
        out = tmp_path / "msr.trace"
        meta = convert_msr(MSR_SAMPLE, out, block_bytes=4096, blocks=1024)
        assert meta.requests == 93
        assert meta.virtual_blocks == 1024
        assert meta.write_ratio == pytest.approx(0.710, abs=5e-4)
        assert meta.extra == {"source": "msr-csv", "block_bytes": 4096,
                              "folded": True}
        assert check_canonical(out)
        replay = TraceReplay.load(out)
        assert len(replay.records) == 93

    def test_conversion_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        convert_msr(MSR_SAMPLE, a, blocks=1024)
        convert_msr(MSR_SAMPLE, b, blocks=1024)
        assert a.read_bytes() == b.read_bytes()

    def test_converted_trace_replays_through_the_array(self, tmp_path):
        out = tmp_path / "msr.trace"
        # The array exposes whole pages below the gap block, so fold
        # the trace into exactly its software-visible global space.
        config = ArrayConfig(num_shards=4, shard_blocks=256,
                             mean_endurance=50.0, batch_writes=93,
                             seed=3)
        decoder = InterleavedDecoder(config.num_shards,
                                     config.software_blocks)
        convert_msr(MSR_SAMPLE, out, blocks=decoder.global_blocks)
        workload = trace_workload(decoder, str(out), seed=3)
        from repro.array import ArrayEngine
        result = ArrayEngine(config, workload, label="msr",
                             jobs=1).run()
        assert result.report.total_writes > 0

    def test_convert_cli(self, tmp_path, capsys):
        out = tmp_path / "msr.trace"
        code = workloads_main(["convert", str(MSR_SAMPLE), "--out",
                               str(out), "--blocks", "1024", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["requests"] == 93
        assert payload["meta"]["extra"]["folded"] is True
        assert workloads_main(["replay", str(out), "--check"]) == 0
        assert "canonical: ok" in capsys.readouterr().out

    def test_convert_cli_missing_file_is_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.csv"
        code = workloads_main(["convert", str(missing), "--out",
                               str(tmp_path / "o.trace")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


# ------------------------------------------- serve / array equivalence


class TestServeArrayEquivalence:
    """One recorded trace drives both stacks with byte-identical
    per-shard address sequences — the PR's acceptance pin."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("equiv") / "shared.trace"
        config = self.serve_config(path)
        workload = zipf_workload(config.global_blocks, requests=400,
                                 write_ratio=0.6, name="equiv", seed=21)
        record_workload(path, workload, 400, epoch_requests=100)
        return path

    @staticmethod
    def serve_config(trace_path):
        return ServeConfig(num_shards=4, shard_blocks=64, page_blocks=8,
                           clients=4, total_requests=400,
                           workload="trace", trace_path=str(trace_path),
                           mean_endurance=120.0, seed=7)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_serve_issues_the_file_order_per_shard(self, trace_path, jobs):
        engine = ServiceEngine(self.serve_config(trace_path))
        engine.run(jobs=jobs)
        issued = np.array([a for a, _w in engine.issue_log],
                          dtype=np.int64)
        replay = TraceReplay.load(trace_path)
        assert len(issued) == 400
        assert shard_digests(issued, engine.decoder) == \
            shard_digests(replay.records[:, 0], engine.decoder)

    def test_array_replays_the_same_file(self, trace_path):
        config = ArrayConfig(num_shards=4, shard_blocks=65, page_blocks=8,
                             mean_endurance=120.0, seed=7)
        assert config.software_blocks == 64  # same space as serve
        decoder = InterleavedDecoder(4, config.software_blocks,
                                     page_blocks=8)
        workload = trace_workload(decoder, str(trace_path), seed=7)
        replay = TraceReplay.load(trace_path)
        expected = replay.write_distribution()
        assert np.allclose(workload.probabilities,
                           expected / expected.sum())
        lines = trace_digest_lines(str(trace_path), config)
        digests = shard_digests(replay.records[:, 0], decoder)
        assert lines == [f"  trace s{sid}: {digest}"
                         for sid, digest in digests.items()]

    def test_geometry_mismatch_is_rejected_everywhere(self, trace_path):
        small = InterleavedDecoder(2, 8)
        with pytest.raises(ConfigurationError):
            trace_workload(small, str(trace_path))
        config = ServeConfig(num_shards=2, shard_blocks=8, page_blocks=4,
                             clients=2, total_requests=10,
                             workload="trace", trace_path=str(trace_path),
                             mean_endurance=120.0, seed=7)
        with pytest.raises(ConfigurationError):
            ServiceEngine(config)

    def test_trace_config_requires_a_path(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(num_shards=2, shard_blocks=8, workload="trace")
