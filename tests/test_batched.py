"""Equivalence tests: the lockstep SoA kernel vs per-cell engine runs.

Every test here builds the *same* cell twice from the same seeds — once
run per-cell (``FastEngine.run``), once through
:class:`repro.sim.batched.BatchedEngine` — and asserts byte-identity of
everything a cell can emit: the lifetime summary, the sampled series, the
end-of-life report, the final device state, and (where enabled) the
deterministic telemetry snapshot.
"""

import json

import numpy as np
import pytest

from repro.config import StartGapConfig
from repro.ecc import ECP, PAYG, FreePRegion
from repro.errors import ConfigurationError
from repro.faultinject import FaultAction, FaultSchedule, ScheduleDriver
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim.batched import (BatchedEngine, is_batchable, run_cell_batch,
                               startgap_bulk_rows)
from repro.sim.fast import FastConfig, FastEngine
from repro.telemetry import TelemetrySession, attach_fast
from repro.traces import hotspot_distribution
from repro.wl import NoWL, StartGap

ECCS = {
    "ecp6": lambda endurance: ECP(endurance, 6),
    "ecp1": lambda endurance: ECP(endurance, 1),
    "payg": lambda endurance: PAYG(endurance),
}


def make_engine(seed, recovery="reviver", ecc="ecp6", wl_kind="startgap",
                num_blocks=256, mean=200.0, psi=8, dead=0.3, batch=1500,
                telemetry=False, schedule=None):
    """One deterministic cell stack; identical for identical arguments."""
    geometry = AddressGeometry(num_blocks=num_blocks)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=0.25,
                               max_order=10, seed=seed)
    chip = PCMChip(geometry, ECCS[ecc](endurance))
    config = FastConfig(recovery=recovery, freep_reserve=0.12,
                        dead_fraction=dead, batch_writes=batch,
                        seed=seed + 1)
    region = None
    if recovery == "freep":
        region = FreePRegion(num_blocks, 0.12)
    logical = region.working_blocks if region is not None else num_blocks
    if wl_kind == "startgap":
        wl = StartGap(logical, config=StartGapConfig(psi=psi, seed=seed + 2))
    else:
        wl = NoWL(logical)
    trace = hotspot_distribution(wl.logical_blocks, 3.0, seed=seed + 3)
    engine = FastEngine(chip, wl, trace, config, region=region)
    if schedule is not None:
        ScheduleDriver(schedule).attach_fast(engine)
    session = None
    if telemetry:
        session = TelemetrySession()
        attach_fast(session, engine)
    return engine, session


def cell_state(engine, summary, session=None):
    """Everything observable about a finished cell, JSON-canonicalized."""
    from repro.array.shard import deterministic_snapshot
    state = {
        "lifetime": summary.lifetime_writes,
        "summary": repr(summary),
        "stop": engine.stopped_reason,
        "total_writes": engine.total_writes,
        "device_writes": engine.chip.total_device_writes,
        "series": engine.series.to_payload(),
        "report": engine.end_of_life_report().as_dict(),
        "wear": engine.chip.wear.tolist(),
        "failed": engine.chip.failed.tolist(),
        "dropped": engine.dropped_writes,
    }
    if session is not None:
        state["snapshot"] = deterministic_snapshot(
            session.registry.snapshot())
    return json.dumps(state, sort_keys=True)


def assert_batched_matches(build, count=3):
    """Run ``count`` cells per-cell and batched; assert byte-identity."""
    solo = []
    for i in range(count):
        engine, session = build(i)
        solo.append(cell_state(engine, engine.run(), session))
    made = [build(i) for i in range(count)]
    summaries = BatchedEngine([engine for engine, _ in made]).run()
    batched = [cell_state(engine, summary, session)
               for (engine, session), summary in zip(made, summaries)]
    assert solo == batched


class TestStartGapBulkRows:
    @pytest.mark.parametrize("psi", [1, 4, 16])
    @pytest.mark.parametrize("moves", [1, 7, 64, 300])
    def test_matches_bulk_migrations(self, psi, moves):
        a = StartGap(96, config=StartGapConfig(psi=psi, seed=5))
        b = StartGap(96, config=StartGapConfig(psi=psi, seed=5))
        # Skew both registers off their initial state first.
        a.bulk_migrations(13)
        startgap_bulk_rows(b, 13)
        rows_a = a.bulk_migrations(moves)
        rows_b = startgap_bulk_rows(b, moves)
        np.testing.assert_array_equal(rows_a, rows_b)
        assert (a.gap, a.start, a.gap_moves) == (b.gap, b.start, b.gap_moves)

    def test_mapping_agrees_after_many_wraps(self):
        a = StartGap(17, config=StartGapConfig(psi=2, seed=9))
        b = StartGap(17, config=StartGapConfig(psi=2, seed=9))
        a.bulk_migrations(123)
        startgap_bulk_rows(b, 123)
        pas = np.arange(a.logical_blocks, dtype=np.int64)
        np.testing.assert_array_equal(a.map_many(pas), b.map_many(pas))

    def test_frozen_and_empty_batches(self):
        wl = StartGap(32, config=StartGapConfig(psi=3, seed=1))
        assert startgap_bulk_rows(wl, 0).shape == (0, 2)
        wl.frozen = True
        assert startgap_bulk_rows(wl, 10).shape == (0, 2)
        assert wl.gap_moves == 0


class TestBatchedEquivalence:
    @pytest.mark.parametrize("recovery", ["none", "reviver", "freep"])
    @pytest.mark.parametrize("ecc", ["ecp6", "ecp1", "payg"])
    def test_scheme_matrix(self, recovery, ecc):
        assert_batched_matches(
            lambda i: make_engine(seed=11 + 17 * i, recovery=recovery,
                                  ecc=ecc))

    def test_nowl_cells(self):
        assert_batched_matches(
            lambda i: make_engine(seed=5 + 7 * i, wl_kind="nowl",
                                  recovery="none", mean=400.0))

    def test_telemetry_snapshots_match(self):
        assert_batched_matches(
            lambda i: make_engine(seed=23 + 5 * i, telemetry=True))

    @pytest.mark.parametrize("actions", [
        [FaultAction(kind="fail-block", at_write=900, das=(3, 7, 11))],
        [FaultAction(kind="endurance-burst", at_write=600, das=(1, 2),
                     margin=2)],
        [FaultAction(kind="exhaust-spares", at_write=1200)],
        [FaultAction(kind="fail-block", at_write=400, das=(0,)),
         FaultAction(kind="endurance-burst", at_write=2000, das=(9, 10))],
    ])
    def test_forced_fault_schedules_match(self, actions):
        schedule = FaultSchedule(actions=tuple(actions))
        assert_batched_matches(
            lambda i: make_engine(seed=31 + 3 * i, telemetry=bool(i % 2),
                                  schedule=schedule))

    def test_mixed_lifetimes_mask_dead_cells(self):
        # Wildly different endurance means: early stoppers must be masked
        # out while long-lived cells keep advancing.
        assert_batched_matches(
            lambda i: make_engine(seed=41 + i, mean=120.0 * (i + 1)),
            count=4)


class TestBatchedEngineValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BatchedEngine([])

    def test_rejects_used_engine(self):
        engine, _ = make_engine(seed=3)
        engine.run()
        with pytest.raises(ConfigurationError):
            BatchedEngine([engine])

    def test_rejects_heterogeneous_blocks(self):
        a, _ = make_engine(seed=3, num_blocks=128)
        b, _ = make_engine(seed=3, num_blocks=256)
        with pytest.raises(ConfigurationError):
            BatchedEngine([a, b])

    def test_rejects_engine_subclasses(self):
        class Odd(FastEngine):
            pass

        engine, _ = make_engine(seed=3)
        odd = Odd(engine.chip, engine.wl, engine.trace, engine.config)
        with pytest.raises(ConfigurationError):
            BatchedEngine([odd])

    def test_run_is_single_shot(self):
        engine, _ = make_engine(seed=3)
        batched = BatchedEngine([engine])
        batched.run()
        with pytest.raises(ConfigurationError):
            batched.run()


class TestCellRegistry:
    def test_campaign_cell_is_batchable(self):
        assert is_batchable("repro.sim.campaign:campaign_cell")
        assert is_batchable("repro.array.shard:run_shard_cell")
        assert not is_batchable("repro.sim.campaign:no_such_function")
        assert not is_batchable("not-a-dotted-ref")

    def test_run_cell_batch_matches_per_cell(self):
        from repro.sim.campaign import DEFAULTS, campaign_cell
        params = dict(DEFAULTS, num_blocks=256, mean_endurance=300.0)
        items = [(f"c/{i}", dict(params, seed=100 + i, telemetry=(i == 0)))
                 for i in range(3)]
        batched = run_cell_batch("repro.sim.campaign:campaign_cell", items)
        assert [key for key, _ in batched] == [key for key, _ in items]
        for (key, value), (_, kwargs) in zip(batched, items):
            assert value == campaign_cell(**kwargs)

    def test_declining_build_falls_back_to_cell_fn(self):
        from repro.experiments import fig8
        items = [("lls", dict(scale="tiny", benchmark="mg",
                              system="LLS", seed=4)),
                 ("wlr", dict(scale="tiny", benchmark="mg",
                              system="WL-Reviver", seed=4))]
        batched = run_cell_batch("repro.experiments.fig8:_cell", items)
        per_cell = {key: fig8._cell(**kwargs) for key, kwargs in items}
        assert dict(batched) == per_cell

    def test_unregistered_fn_raises(self):
        with pytest.raises(ConfigurationError):
            run_cell_batch("repro.experiments.parallel:jsonify",
                           [("x", {"value": 1})])


class TestCampaignEquivalence:
    def test_batch_sizes_and_jobs_agree(self, tmp_path):
        from repro.sim.campaign import run_campaign
        params = dict(num_blocks=256, mean_endurance=300.0)
        reference = run_campaign(6, seed=2, jobs=1, batch=1, **params)
        for jobs, batch in [(1, 3), (1, 6), (2, 3)]:
            got = run_campaign(6, seed=2, jobs=jobs, batch=batch, **params)
            assert json.dumps(got, sort_keys=True) == \
                json.dumps(reference, sort_keys=True), (jobs, batch)

    def test_check_flag_passes(self, capsys):
        from repro.sim.campaign import main
        code = main(["--seeds", "3", "--batch", "3", "--blocks", "256",
                     "--mean", "300", "--check", "--quiet"])
        assert code == 0

    def test_resume_mixes_with_batched_groups(self, tmp_path):
        from repro.sim.campaign import run_campaign
        params = dict(num_blocks=256, mean_endurance=300.0)
        resume = tmp_path / "campaign.json"
        first = run_campaign(4, seed=2, batch=2, resume=resume, **params)
        # A second, larger run must reuse the four cached cells and batch
        # only the new ones — and still match the from-scratch payload.
        second = run_campaign(6, seed=2, batch=4, resume=resume, **params)
        scratch = run_campaign(6, seed=2, batch=1, **params)
        assert json.dumps(second, sort_keys=True) == \
            json.dumps(scratch, sort_keys=True)
        assert first["cells"].keys() <= second["cells"].keys()


class TestArrayBatchedEquivalence:
    def test_array_engine_batch_matches(self):
        from repro.array.engine import ArrayConfig, ArrayEngine
        cfg = dict(num_shards=4, shard_blocks=256, mean_endurance=300.0,
                   batch_writes=1000, seed=7)
        trace = hotspot_distribution(4 * 256, 2.5, seed=11)
        solo = ArrayEngine(ArrayConfig(**cfg), trace).run().as_dict()
        batched = ArrayEngine(ArrayConfig(**cfg), trace,
                              batch=4).run().as_dict()
        assert json.dumps(solo, sort_keys=True) == \
            json.dumps(batched, sort_keys=True)


class TestFigureBatchedEquivalence:
    def test_fig5_batch_matches(self):
        from repro.experiments import fig5
        solo = fig5.as_dict(fig5.run(scale="tiny", benchmarks=["mg"],
                                     seed=1))
        batched = fig5.as_dict(fig5.run(scale="tiny", benchmarks=["mg"],
                                        seed=1, batch=2))
        assert solo == batched

    def test_fig7_batch_matches(self):
        from repro.experiments import fig7
        solo = fig7.run(scale="tiny", benchmarks=["mg"], reserves=[0.1],
                        seed=1)
        batched = fig7.run(scale="tiny", benchmarks=["mg"], reserves=[0.1],
                           seed=1, batch=4)
        assert solo == batched
