"""Tests for two-level Security Refresh, incl. full-stack revival."""

import random

import numpy as np
import pytest

from repro.config import ReviverConfig
from repro.errors import CapacityExhaustedError, ConfigurationError
from repro.mc import ReviverController
from repro.osmodel import PagePool
from repro.wl import NullPort, TwoLevelSecurityRefresh

from .conftest import assert_data_consistent, make_chip


def make_scheme(device: int = 64, subs: int = 4, inner: int = 5,
                outer: int = None, seed: int = 7):
    return TwoLevelSecurityRefresh(device, num_subregions=subs,
                                   inner_interval=inner,
                                   outer_interval=outer, seed=seed)


class TestMapping:
    def test_bijection_initial(self):
        make_scheme().check_bijection()

    def test_bijection_through_both_levels(self):
        scheme = make_scheme(inner=2, outer=40)
        port = NullPort()
        for step in range(600):
            scheme.tick(port, pa=step % 64)
            if step % 37 == 0:
                scheme.check_bijection()
        scheme.check_bijection()
        assert scheme.outer.refreshes > 0  # the outer level actually ran

    def test_map_many_matches_scalar(self):
        scheme = make_scheme(inner=2, outer=40)
        port = NullPort()
        for step in range(150):
            scheme.tick(port, pa=(step * 7) % 64)
        pas = np.arange(64)
        assert (scheme.map_many(pas)
                == np.array([scheme.map(int(p)) for p in pas])).all()

    def test_all_blocks_mapped(self):
        assert make_scheme().logical_blocks == 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            TwoLevelSecurityRefresh(100, num_subregions=4)
        with pytest.raises(ConfigurationError):
            TwoLevelSecurityRefresh(64, num_subregions=3)
        with pytest.raises(ConfigurationError):
            TwoLevelSecurityRefresh(64, num_subregions=64)


class TestScheduling:
    def test_inner_charged_per_subregion(self):
        scheme = make_scheme(inner=5, outer=10 ** 9)
        port = NullPort()
        for _ in range(50):
            scheme.tick(port, pa=0)  # all writes to sub-region 0
        assert scheme.inner[0].refreshes == 10
        assert all(scheme.inner[s].refreshes == 0 for s in (1, 2, 3))

    def test_outer_swap_migrates_whole_subregions(self):
        scheme = make_scheme(inner=10 ** 9, outer=10)
        port = NullPort()
        changed_sizes = []
        for step in range(200):
            changed = scheme.tick(port, pa=step % 64)
            if changed:
                changed_sizes.append(len(changed))
        # Every outer refresh that swapped moved 2 * sub_blocks PAs.
        assert changed_sizes
        assert all(size == 2 * scheme.sub_blocks for size in changed_sizes)

    def test_data_moves_with_outer_swap(self):
        scheme = make_scheme(inner=10 ** 9, outer=5, seed=9)
        dev = [-1] * 64

        class Port:
            def can_start_migration(self):
                return True

            def read_migration(self, da):
                return dev[da]

            def write_migration_pa(self, pa, tag):
                dev[scheme.map(pa)] = tag

        port = Port()
        expected = {}
        rnd = random.Random(2)
        for step in range(2000):
            pa = rnd.randrange(64)
            dev[scheme.map(pa)] = step
            expected[pa] = step
            scheme.tick(port, pa=pa)
        assert scheme.outer.rounds >= 1
        for pa, tag in expected.items():
            assert dev[scheme.map(pa)] == tag

    def test_schedule_due_and_bulk(self):
        scheme = make_scheme(inner=5, outer=200)
        counts = np.ones(64, dtype=np.int64) * 4  # 256 writes
        scheme.charge_writes(np.arange(64), counts)
        due = scheme.schedule_due(256)
        assert due > 0
        rows = scheme.bulk_migrations(due)
        scheme.check_bijection()
        assert rows.shape[1] == 2

    def test_freeze(self):
        scheme = make_scheme(inner=1)
        scheme.freeze()
        assert scheme.tick(NullPort(), pa=0) == []


class TestWithReviver:
    def test_full_stack_data_consistency(self):
        """The 'any scheme' claim, hardest case: hierarchical migration
        with whole-sub-region moves over a failing chip."""
        chip = make_chip(num_blocks=128, mean=400, seed=11)
        scheme = TwoLevelSecurityRefresh(128, num_subregions=4,
                                         inner_interval=40, seed=5)
        ospool = PagePool(scheme.logical_blocks, blocks_per_page=8,
                          utilization=0.8, seed=5)
        controller = ReviverController(
            chip, scheme, ospool,
            reviver_config=ReviverConfig(check_invariants=True),
            copy_on_retire=True)
        rng = random.Random(3)
        expected = {}
        space = ospool.virtual_blocks
        try:
            step = 0
            while chip.failed_fraction() < 0.3 and step < 25_000:
                vblock = rng.randrange(space)
                controller.service_write(vblock, tag=step)
                expected[vblock] = step
                step += 1
        except CapacityExhaustedError:
            pass
        assert chip.failed_fraction() > 0.05
        assert controller.reviver.stats()["hidden_failures"] > 0
        assert_data_consistent(controller, expected)
