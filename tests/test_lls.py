"""Tests for the LLS baseline: chunks, groups, recovery, and the engine."""

import numpy as np
import pytest

from repro.config import LLSConfig, StartGapConfig
from repro.ecc import ECP
from repro.errors import CapacityExhaustedError, ConfigurationError
from repro.lls import ChunkReservation, LLSRecovery, SalvageGroups, make_lls_engine
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim import FastConfig, FastEngine
from repro.traces import hotspot_distribution
from repro.wl import StartGap


class TestChunkReservation:
    def test_reserve_carves_from_top(self):
        chunks = ChunkReservation(1000, 100)
        start, end = chunks.reserve_next()
        assert (start, end) == (900, 1000)
        start, end = chunks.reserve_next()
        assert (start, end) == (800, 900)
        assert chunks.working_blocks == 800
        assert chunks.reserved_fraction == pytest.approx(0.2)

    def test_exhaustion(self):
        chunks = ChunkReservation(300, 100, min_working_blocks=100)
        chunks.reserve_next()
        chunks.reserve_next()
        assert not chunks.can_reserve()
        with pytest.raises(CapacityExhaustedError):
            chunks.reserve_next()

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            ChunkReservation(100, 100)
        with pytest.raises(ConfigurationError):
            ChunkReservation(100, 0)


class TestSalvageGroups:
    def test_same_group_assignment(self):
        groups = SalvageGroups(4)
        groups.add_chunk(100, 116)
        backup = groups.assign(6)  # group 2
        assert backup % 4 == 6 % 4
        assert groups.resolve(6) == backup

    def test_group_dry_returns_none(self):
        groups = SalvageGroups(4)
        groups.add_chunk(100, 104)  # one block per group
        assert groups.assign(0) is not None
        assert groups.assign(4) is None  # group 0 is dry
        assert groups.available(1) == 1  # other groups stranded

    def test_backup_failure_relinks_origin(self):
        groups = SalvageGroups(4)
        groups.add_chunk(100, 116)
        first = groups.assign(6)
        second = groups.assign(first)  # the backup itself died
        assert groups.resolve(6) == second
        assert second != first

    def test_idle_blocks_counted(self):
        groups = SalvageGroups(4)
        groups.add_chunk(100, 116)
        assert groups.idle_blocks() == 16
        groups.assign(0)
        assert groups.idle_blocks() == 15


class TestLLSRecovery:
    def test_reserves_chunk_on_demand(self):
        recovery = LLSRecovery(1024, LLSConfig(chunk_blocks=64, num_groups=4),
                               blocks_per_page=8)
        assert recovery.chunks.chunks == 0
        backup = recovery.handle_failure(5)
        assert backup is not None
        assert recovery.chunks.chunks == 1
        assert recovery.resolve(5) == backup

    def test_gives_up_when_space_gone(self):
        recovery = LLSRecovery(64, LLSConfig(chunk_blocks=32, num_groups=2),
                               blocks_per_page=8)
        # Only one chunk fits (min working = 16).
        assert recovery.handle_failure(0) is not None
        # Exhaust group 0's backups.
        group0 = [da for da in range(32, 64) if da % 2 == 0]
        for index in range(len(group0) - 1):
            assert recovery.handle_failure(2 * index + 2) is not None
        assert recovery.handle_failure(60) is None
        assert recovery.frozen

    def test_chunk_aligned_to_pages(self):
        recovery = LLSRecovery(1024, LLSConfig(chunk_blocks=60, num_groups=4),
                               blocks_per_page=8)
        assert recovery.chunks.chunk_blocks == 64

    def test_stats(self):
        recovery = LLSRecovery(1024, LLSConfig(chunk_blocks=64, num_groups=4),
                               blocks_per_page=8)
        recovery.handle_failure(5)
        stats = recovery.stats()
        assert stats["chunks"] == 1
        assert stats["backups_assigned"] == 1
        assert stats["idle_backup_blocks"] == 63


def make_engines(num_blocks: int = 512, mean: float = 300.0, seed: int = 3):
    def chip():
        geometry = AddressGeometry(num_blocks=num_blocks)
        endurance = EnduranceModel(num_blocks=num_blocks, mean=mean,
                                   cov=0.2, max_order=10, seed=seed)
        return PCMChip(geometry, ECP(endurance, 1))

    trace = hotspot_distribution(num_blocks, 6.0, seed=seed)
    lls = make_lls_engine(
        chip(), hotspot_distribution(num_blocks, 6.0, seed=seed),
        FastConfig(batch_writes=2000, seed=seed),
        LLSConfig(chunk_blocks=64, num_groups=8),
        StartGapConfig(psi=10))
    wlr = FastEngine(chip(), StartGap(num_blocks,
                                      config=StartGapConfig(psi=10)),
                     trace, FastConfig(recovery="reviver", batch_writes=2000,
                                       seed=seed))
    return lls, wlr


class TestLLSFastEngine:
    def test_runs_and_reserves_chunks(self):
        lls, _ = make_engines()
        summary = lls.run()
        assert summary.lifetime_writes > 0
        assert lls.lls.chunks.chunks >= 1

    def test_restricted_randomizer_in_use(self):
        from repro.wl.randomizer import RestrictedRandomizer
        lls, _ = make_engines()
        assert isinstance(lls.wl.randomizer, RestrictedRandomizer)

    def test_wlr_outlives_lls(self):
        """Figure 8's headline: LLS sustains far fewer writes than WLR."""
        lls, wlr = make_engines()
        lls_summary = lls.run()
        wlr_summary = wlr.run()
        assert wlr_summary.lifetime_writes > lls_summary.lifetime_writes

    def test_usable_space_falls_in_chunk_steps(self):
        lls, _ = make_engines()
        lls.run()
        usable = [p.usable for p in lls.series.points]
        drops = [a - b for a, b in zip(usable, usable[1:]) if b < a]
        chunk_fraction = lls.lls.chunks.chunk_blocks / lls.chip.num_blocks
        assert any(d >= chunk_fraction * 0.99 for d in drops)

    def test_stats_include_lls_counters(self):
        lls, _ = make_engines()
        lls.run()
        stats = lls.stats()
        assert "lls_chunks" in stats
        assert "lls_idle_backup_blocks" in stats
