"""Unit tests for the remap cache and access accounting."""

import pytest

from repro.config import CacheConfig
from repro.mc import AccessResult, AccessStats, RemapCache


def make_cache(entries: int = 8, ways: int = 2) -> RemapCache:
    return RemapCache(CacheConfig(capacity_entries=entries,
                                  associativity=ways))


class TestRemapCache:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.get(5) is None
        cache.put(5, 99)
        assert cache.get(5) == 99
        assert cache.misses == 1
        assert cache.hits == 1

    def test_update_existing(self):
        cache = make_cache()
        cache.put(5, 99)
        cache.put(5, 100)
        assert cache.get(5) == 100
        assert len(cache) == 1

    def test_lru_eviction_within_set(self):
        cache = make_cache(entries=8, ways=2)  # 4 sets
        # Keys 0, 4, 8 share set 0 (key % 4).
        cache.put(0, 10)
        cache.put(4, 14)
        cache.get(0)          # refresh 0: 4 becomes LRU
        cache.put(8, 18)      # evicts 4
        assert cache.get(0) == 10
        assert cache.get(8) == 18
        assert cache.get(4) is None

    def test_invalidate(self):
        cache = make_cache()
        cache.put(5, 99)
        cache.invalidate(5)
        assert cache.get(5) is None
        assert cache.invalidations == 1
        cache.invalidate(5)   # idempotent
        assert cache.invalidations == 1

    def test_clear(self):
        cache = make_cache()
        cache.put(1, 2)
        cache.put(3, 4)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = make_cache()
        assert cache.hit_rate == 0.0
        cache.put(1, 2)
        cache.get(1)
        cache.get(9)
        assert cache.hit_rate == pytest.approx(0.5)


class TestAccessStats:
    def result(self, **kwargs) -> AccessResult:
        base = dict(vblock=0, pa=0, da=0, pcm_accesses=1)
        base.update(kwargs)
        return AccessResult(**base)

    def test_record_write_and_read(self):
        stats = AccessStats()
        stats.record(self.result(pcm_accesses=2, redirected=True),
                     is_write=True)
        stats.record(self.result(), is_write=False)
        assert stats.requests == 2
        assert stats.writes == 1
        assert stats.reads == 1
        assert stats.pcm_accesses == 3
        assert stats.redirected == 1

    def test_avg_access_time(self):
        stats = AccessStats()
        assert stats.avg_access_time == 0.0
        stats.record(self.result(pcm_accesses=1), is_write=True)
        stats.record(self.result(pcm_accesses=2), is_write=True)
        assert stats.avg_access_time == pytest.approx(1.5)

    def test_redirect_rate(self):
        stats = AccessStats()
        stats.record(self.result(redirected=True), is_write=True)
        stats.record(self.result(), is_write=True)
        assert stats.redirect_rate == pytest.approx(0.5)

    def test_faults_and_victims(self):
        stats = AccessStats()
        stats.record(self.result(faults_handled=2, victimized=True),
                     is_write=True)
        assert stats.faults == 2
        assert stats.victimized == 1

    def test_merged(self):
        a = AccessStats()
        b = AccessStats()
        a.record(self.result(pcm_accesses=3), is_write=True)
        b.record(self.result(), is_write=False)
        merged = a.merged(b)
        assert merged.requests == 2
        assert merged.pcm_accesses == 4
        # Originals untouched.
        assert a.requests == 1 and b.requests == 1
