"""Unit tests for chain resolution and reduction (Figures 2-3)."""

import pytest

from repro.config import ReviverConfig
from repro.errors import ProtocolError
from repro.reviver import ChainResolver, LinkTable, PageLedger


class World:
    """A toy mapping + failure state the resolver operates against."""

    def __init__(self, blocks: int = 16) -> None:
        self.mapping = {pa: pa for pa in range(blocks)}  # PA -> DA
        self.failed = set()
        ledger = PageLedger(ReviverConfig(), blocks_per_page=8,
                            block_bytes=64)
        ledger.claim(0, list(range(8)))
        ledger.claim(1, list(range(8, 16)))
        self.links = LinkTable(ledger)
        self.resolver = ChainResolver(self.links, self.map_fn,
                                      lambda da: da in self.failed)

    def map_fn(self, pa: int) -> int:
        return self.mapping[pa]


class TestResolve:
    def test_healthy_block_is_itself(self):
        world = World()
        resolution = world.resolver.resolve(5)
        assert resolution.final_da == 5
        assert resolution.hops == 0
        assert not resolution.is_loop

    def test_one_step_chain(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 12           # vpa 2 -> shadow 12
        world.links.link(10, 2)
        resolution = world.resolver.resolve(10)
        assert resolution.final_da == 12
        assert resolution.hops == 1
        assert resolution.path == (10, 12)

    def test_loop_detected(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 10           # vpa maps back to the failed block
        world.links.link(10, 2)
        resolution = world.resolver.resolve(10)
        assert resolution.is_loop
        assert resolution.final_da is None

    def test_unlinked_failed_raises(self):
        world = World()
        world.failed.add(10)
        with pytest.raises(ProtocolError):
            world.resolver.resolve(10)

    def test_two_step_chain_walks(self):
        world = World()
        world.failed.update({10, 11})
        world.mapping[2] = 11           # d10 -> vpa2 -> d11
        world.mapping[3] = 13           # d11 -> vpa3 -> d13 (healthy)
        world.links.link(10, 2)
        world.links.link(11, 3)
        resolution = world.resolver.resolve(10)
        assert resolution.final_da == 13
        assert resolution.hops == 2


class TestReduce:
    def test_reduce_flattens_two_step_chain(self):
        """The Figure 3 switch: after reduce, d10 is one step from the
        healthy shadow and d11 sits on a PA-DA loop."""
        world = World()
        world.failed.update({10, 11})
        world.mapping[2] = 11
        world.mapping[3] = 13
        world.links.link(10, 2)
        world.links.link(11, 3)
        resolution = world.resolver.reduce(10)
        assert resolution.final_da == 13
        assert resolution.hops == 1
        # Pointers switched: d10 -> vpa3, d11 -> vpa2 (a loop: map(2)=11).
        assert world.links.vpa_of(10) == 3
        assert world.links.vpa_of(11) == 2
        assert world.resolver.resolve(11).is_loop
        assert world.resolver.switches == 1

    def test_reduce_healthy_is_noop(self):
        world = World()
        resolution = world.resolver.reduce(5)
        assert resolution.final_da == 5
        assert world.resolver.switches == 0

    def test_reduce_one_step_is_stable(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 12
        world.links.link(10, 2)
        world.resolver.reduce(10)
        assert world.links.vpa_of(10) == 2
        assert world.resolver.switches == 0

    def test_reduce_three_step_chain(self):
        world = World()
        world.failed.update({8, 9, 10})
        world.mapping[2] = 9    # d8 -> vpa2 -> d9
        world.mapping[3] = 10   # d9 -> vpa3 -> d10
        world.mapping[4] = 14   # d10 -> vpa4 -> d14 (healthy)
        world.links.link(8, 2)
        world.links.link(9, 3)
        world.links.link(10, 4)
        resolution = world.resolver.reduce(8)
        assert resolution.final_da == 14
        assert resolution.hops == 1
        # Both intermediate blocks ended on loops.
        assert world.resolver.resolve(9).is_loop
        assert world.resolver.resolve(10).is_loop
        assert world.resolver.switches == 2

    def test_reduce_stops_at_unlinked_fresh_failure(self):
        """A chain ending at a not-yet-linked block is left for the
        in-flight failure handler (transient state)."""
        world = World()
        world.failed.update({10, 11})
        world.mapping[2] = 11
        world.links.link(10, 2)          # d11 is failed but unlinked
        resolution = world.resolver.reduce(10)
        assert resolution.final_da == 11
        assert world.resolver.switches == 0

    def test_reduce_loop_returns_none(self):
        world = World()
        world.failed.add(10)
        world.mapping[2] = 10
        world.links.link(10, 2)
        resolution = world.resolver.reduce(10)
        assert resolution.is_loop
