"""Property suite for the workload package.

The pinned contracts, each driven by hypothesis over seeds and
geometries:

* **seed determinism** — a workload's stream is a pure function of its
  builder arguments, however it is consumed (one request at a time or
  in arbitrary bulk splits);
* **Zipf rank-frequency monotonicity** — empirical frequency follows
  the rank law: higher-probability ranks are sampled at least as often,
  aggregated over rank halves to keep the check noise-immune;
* **read/write mix convergence** — the empirical write fraction
  concentrates around ``write_ratio``;
* **record → replay round trip** — freezing a workload to the canonical
  file format and loading it back reproduces the records and the bytes
  exactly;
* **prefix-replay equivalence** — appending phases never rewrites an
  earlier prefix (the :class:`~repro.array.trace.SegmentedTrace`
  contract), and ``segments()`` feeds ``SegmentedTrace`` verbatim.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.trace import SegmentedTrace
from repro.workloads import (TraceReplay, canonical_bytes,
                             phase_shifting_hotspot, record_workload,
                             sequential_workload, uniform_workload,
                             zipf_workload)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
spaces = st.integers(min_value=4, max_value=128)


def build(kind, blocks, seed, write_ratio=0.5):
    if kind == "uniform":
        return uniform_workload(blocks, requests=512,
                                write_ratio=write_ratio, seed=seed)
    if kind == "zipf":
        return zipf_workload(blocks, requests=512,
                             write_ratio=write_ratio, seed=seed)
    if kind == "sequential":
        return sequential_workload(blocks, stride=3,
                                   write_ratio=write_ratio, seed=seed)
    return phase_shifting_hotspot(blocks, phases=3, phase_requests=200,
                                  write_ratio=write_ratio, seed=seed)


KINDS = ("uniform", "zipf", "sequential", "hotshift")


@given(seed=seeds, blocks=spaces, kind=st.sampled_from(KINDS),
       split=st.integers(min_value=1, max_value=400))
@settings(max_examples=60, deadline=None)
def test_stream_is_independent_of_consumption_granularity(
        seed, blocks, kind, split):
    bulk = build(kind, blocks, seed).take(401)
    pieces = build(kind, blocks, seed)
    first = pieces.take(split)
    rest = pieces.take(401 - split)
    assert np.array_equal(bulk, np.concatenate([first, rest]))


@given(seed=seeds, blocks=spaces, kind=st.sampled_from(KINDS))
@settings(max_examples=40, deadline=None)
def test_same_arguments_reproduce_the_same_stream(seed, blocks, kind):
    assert np.array_equal(build(kind, blocks, seed).take(300),
                          build(kind, blocks, seed).take(300))


@given(seed=seeds, blocks=st.integers(min_value=8, max_value=64))
@settings(max_examples=30, deadline=None)
def test_zipf_rank_frequency_is_monotone_over_halves(seed, blocks):
    workload = zipf_workload(blocks, exponent=1.2, requests=4096,
                             seed=seed)
    addresses = workload.take(4096)[:, 0]
    counts = np.bincount(addresses, minlength=blocks)
    probabilities = workload.phases[0].probabilities
    by_rank = counts[np.argsort(probabilities)[::-1]]
    half = blocks // 2
    # The popular half must dominate the tail half, decisively.
    assert by_rank[:half].sum() > by_rank[half:].sum()
    # And the single top rank beats the single bottom rank.
    assert by_rank[0] >= by_rank[-1]


@given(seed=seeds, kind=st.sampled_from(KINDS),
       write_ratio=st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=40, deadline=None)
def test_write_mix_converges_to_the_requested_ratio(seed, kind,
                                                    write_ratio):
    flags = build(kind, 32, seed, write_ratio).take(4096)[:, 1]
    observed = flags.mean()
    sigma = np.sqrt(write_ratio * (1 - write_ratio) / 4096)
    assert abs(observed - write_ratio) < 6 * sigma


@given(seed=seeds, blocks=spaces, kind=st.sampled_from(KINDS),
       requests=st.integers(min_value=1, max_value=300),
       epoch=st.integers(min_value=1, max_value=64))
@settings(max_examples=40, deadline=None)
def test_record_replay_round_trip_is_byte_identical(tmp_path_factory,
                                                    seed, blocks, kind,
                                                    requests, epoch):
    path = tmp_path_factory.mktemp("prop") / "w.trace"
    meta = record_workload(path, build(kind, blocks, seed), requests,
                           epoch_requests=epoch)
    replay = TraceReplay.load(path)
    assert np.array_equal(replay.records,
                          build(kind, blocks, seed).take(requests))
    assert canonical_bytes(meta, replay.records) == path.read_bytes()


@given(seed=seeds, blocks=spaces,
       prefix_phases=st.integers(min_value=1, max_value=3),
       extra_phases=st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_appending_phases_never_rewrites_the_prefix(seed, blocks,
                                                    prefix_phases,
                                                    extra_phases):
    base = phase_shifting_hotspot(blocks, phases=prefix_phases,
                                  phase_requests=150, seed=seed)
    extra = phase_shifting_hotspot(blocks, phases=extra_phases,
                                   phase_requests=90, seed=seed,
                                   name="extra")
    span = prefix_phases * 150
    prefix = base.take(span)
    assert np.array_equal(prefix, base.then(extra).take(span))


@given(seed=seeds, blocks=spaces)
@settings(max_examples=30, deadline=None)
def test_segments_feed_segmented_trace_verbatim(seed, blocks):
    workload = phase_shifting_hotspot(blocks, phases=3,
                                      phase_requests=100, seed=seed)
    trace = SegmentedTrace(workload.segments(), name=workload.name,
                           seed=seed)
    assert trace.virtual_blocks == workload.virtual_blocks
    counts = trace.batch_counts(100)
    assert counts.sum() == 100
    # Draws are reproducible from the same segments and seed.
    again = SegmentedTrace(workload.segments(), name=workload.name,
                           seed=seed)
    assert np.array_equal(counts, again.batch_counts(100))
