"""The repro.balance control plane: health, remap, leveler, engines.

Four layers:

* unit tests over the primitives — the deterministic health model
  (wear + failure-rate EWMA, seeded tie-break jitter), the remappable
  decoder (swap / grow / rehome and the sparse table), and the
  bounded-budget leveler (budget, quiet threshold, no mass inversion);
* array integration — the balanced engine path extends full-capacity
  lifetime over the static baseline under skewed traffic, elastic
  scale-out grows the report, fault schedules compose, and results are
  byte-identical at any ``--jobs``;
* serve integration — live scale-out under traffic preserves the
  zero-drop identity and byte-identical SLO reports at any ``--jobs``,
  and kill schedules reach shards added mid-run;
* CLI smoke for both front ends.
"""

import json

import numpy as np
import pytest

from repro.array import ArrayConfig, ArrayEngine, InterleavedDecoder
from repro.array.workloads import zipf_workload
from repro.balance import (BalancedDecoder, HealthConfig, LevelerPolicy,
                           RemapTable, ShardHealthModel, movers_mask,
                           plan_swaps)
from repro.errors import ConfigurationError
from repro.faultinject import shard_death_schedule
from repro.serve import ServeConfig
from repro.serve.engine import ServiceEngine

# ---------------------------------------------------------------------------
# health model


class TestHealthModel:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            HealthConfig(wear_weight=-0.1)
        with pytest.raises(ConfigurationError, match="ewma_alpha"):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ConfigurationError, match=">= 1 shard"):
            ShardHealthModel(0, 100.0)
        with pytest.raises(ConfigurationError, match="endurance_budget"):
            ShardHealthModel(2, 0.0)

    def test_wear_drives_risk(self):
        model = ShardHealthModel(2, endurance_budget=100.0, seed=1)
        model.observe(0, 80.0, 0.0)
        model.observe(1, 10.0, 0.0)
        assert model.risk(0) > model.risk(1)
        assert model.headroom(0) == pytest.approx(0.2)
        assert model.headroom(1) == pytest.approx(0.9)

    def test_failure_rate_ewma_sharpens_the_ranking(self):
        # Equal wear, but shard 0's failed capacity is accelerating.
        model = ShardHealthModel(2, endurance_budget=100.0, seed=1)
        for failed in (0.0, 0.05, 0.15):
            model.observe(0, 50.0, failed)
            model.observe(1, 50.0, 0.0)
        assert model.risk(0) > model.risk(1)

    def test_reobserving_an_old_reading_is_harmless(self):
        model = ShardHealthModel(1, endurance_budget=100.0, seed=1)
        model.observe(0, 50.0, 0.1)
        before = model.risk(0)
        model.observe(0, 50.0, 0.1)
        # The EWMA sees a zero increment, decaying toward zero: risk
        # never jumps from a repeated observation.
        assert model.risk(0) <= before
        assert model._failed[0] == pytest.approx(0.1)

    def test_dead_shard_pins_the_extremes(self):
        model = ShardHealthModel(2, endurance_budget=100.0, seed=1)
        model.observe(0, 10.0, 0.0, dead=True)
        assert model.risk(0) == 1.0
        assert model.headroom(0) == 0.0

    def test_risks_are_seed_deterministic_and_totally_ordered(self):
        a = ShardHealthModel(4, endurance_budget=100.0, seed=9)
        b = ShardHealthModel(4, endurance_budget=100.0, seed=9)
        assert np.array_equal(a.risks(), b.risks())
        # Identical signals, yet the seeded jitter makes ties impossible.
        assert len(set(a.risks().tolist())) == 4

    def test_add_shard_starts_fresh(self):
        model = ShardHealthModel(2, endurance_budget=100.0, seed=1)
        model.observe(0, 90.0, 0.0)
        new = model.add_shard()
        assert new == 2
        assert model.headroom(new) == pytest.approx(1.0, abs=1e-9)

    def test_bounds_and_negative_observations_are_rejected(self):
        model = ShardHealthModel(2, endurance_budget=100.0, seed=1)
        with pytest.raises(ConfigurationError, match="outside"):
            model.risk(2)
        with pytest.raises(ConfigurationError, match="non-negative"):
            model.observe(0, -1.0, 0.0)

    def test_publish_uses_min_and_last_modes(self):
        from repro.telemetry import TelemetrySession
        model = ShardHealthModel(2, endurance_budget=100.0, seed=1)
        model.observe(0, 60.0, 0.0)
        session = TelemetrySession()
        model.publish(session)
        gauges = session.registry.snapshot()["gauges"]
        assert gauges["balance.headroom"]["mode"] == "min"
        assert gauges["balance.headroom"]["value"] == pytest.approx(0.4)
        assert gauges["balance.s0.risk"]["mode"] == "last"


# ---------------------------------------------------------------------------
# remappable decoder


def _decoder(shards=3, blocks=64, interleave="page"):
    base = InterleavedDecoder(shards, shards * blocks,
                              interleave=interleave, page_blocks=16)
    return BalancedDecoder(base)


class TestBalancedDecoder:
    def test_starts_as_the_identity(self):
        decoder = _decoder()
        addresses = np.arange(decoder.global_blocks, dtype=np.int64)
        assert np.array_equal(decoder.shard_of(addresses),
                              decoder.base.shard_of(addresses))
        assert np.array_equal(decoder.local_of(addresses),
                              decoder.base.local_of(addresses))

    def test_swap_exchanges_homes(self):
        decoder = _decoder()
        a, b = 0, decoder.global_blocks - 1
        home_a, home_b = decoder.decode(a), decoder.decode(b)
        decoder.swap(a, b)
        assert decoder.decode(a) == home_b
        assert decoder.decode(b) == home_a
        with pytest.raises(ConfigurationError, match="outside"):
            decoder.swap(0, decoder.global_blocks)

    def test_add_shard_moves_only_the_hash_hits(self):
        decoder = _decoder()
        addresses = np.arange(decoder.global_blocks, dtype=np.int64)
        before = decoder.shard_of(addresses).copy()
        movers, donors = decoder.add_shard()
        after = decoder.shard_of(addresses)
        assert decoder.num_shards == 4
        changed = np.nonzero(before != after)[0]
        assert np.array_equal(changed, movers)
        assert np.array_equal(before[movers], donors)
        assert np.array_equal(after[movers],
                              np.full(movers.size, 3, dtype=np.int64))
        # Movers take the new shard's slots in ascending address order.
        assert np.array_equal(decoder.local_of(movers),
                              np.arange(movers.size, dtype=np.int64))
        # ~1/4 of the space moves under the consistent-hash rule.
        assert 0 < movers.size < decoder.global_blocks // 2

    def test_rehome_applies_the_degraded_rule(self):
        decoder = _decoder()
        addresses = np.arange(decoder.global_blocks, dtype=np.int64)
        slots = decoder.local_of(addresses).copy()
        dead = decoder.shard_of(addresses).copy()
        affected = decoder.rehome(1, [0, 2])
        live = np.asarray([0, 2], dtype=np.int64)
        expected = live[slots[affected] % 2]
        assert np.array_equal(decoder.shard_of(affected), expected)
        assert np.array_equal(affected, np.nonzero(dead == 1)[0])
        # Slots are preserved across the re-home.
        assert np.array_equal(decoder.local_of(affected), slots[affected])
        with pytest.raises(ConfigurationError, match="survivor"):
            decoder.rehome(0, [])

    def test_masses_project_through_the_map(self):
        decoder = _decoder()
        probabilities = np.full(decoder.global_blocks,
                                1.0 / decoder.global_blocks)
        masses = decoder.shard_masses(probabilities)
        assert masses.sum() == pytest.approx(1.0)
        decoder.rehome(1, [0, 2])
        masses = decoder.shard_masses(probabilities)
        assert masses[1] == 0.0
        local = decoder.local_mass(probabilities, 0)
        assert local.sum() == pytest.approx(masses[0])
        with pytest.raises(ConfigurationError, match="covers"):
            decoder.shard_masses(np.ones(3))

    def test_table_round_trips_through_json(self):
        decoder = _decoder()
        decoder.swap(0, decoder.global_blocks - 1)
        decoder.add_shard()
        table = decoder.table()
        restored = BalancedDecoder.from_table(
            RemapTable.from_json(table.to_json()))
        addresses = np.arange(decoder.global_blocks, dtype=np.int64)
        assert np.array_equal(decoder.shard_of(addresses),
                              restored.shard_of(addresses))
        assert np.array_equal(decoder.local_of(addresses),
                              restored.local_of(addresses))
        assert restored.num_shards == decoder.num_shards

    def test_malformed_tables_are_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            RemapTable.from_json("{nope")
        with pytest.raises(ConfigurationError, match="must be an object"):
            RemapTable.from_json("[1]")
        with pytest.raises(ConfigurationError, match="malformed"):
            RemapTable.from_json("{}")
        table = _decoder().table()
        shrunk = RemapTable(base_shards=3, num_shards=2,
                            shard_blocks=table.shard_blocks,
                            interleave=table.interleave,
                            page_blocks=table.page_blocks, moves=())
        with pytest.raises(ConfigurationError, match="shrinks"):
            BalancedDecoder.from_table(shrunk)
        bad_move = RemapTable(base_shards=3, num_shards=3,
                              shard_blocks=table.shard_blocks,
                              interleave=table.interleave,
                              page_blocks=table.page_blocks,
                              moves=((10**9, 0, 0),))
        with pytest.raises(ConfigurationError, match="outside"):
            BalancedDecoder.from_table(bad_move)

    def test_movers_mask_is_a_pure_address_function(self):
        addresses = np.arange(4096, dtype=np.int64)
        a = movers_mask(addresses, 4, 5)
        b = movers_mask(addresses, 4, 5)
        assert np.array_equal(a, b)
        with pytest.raises(ConfigurationError, match="positive"):
            movers_mask(addresses, 0, 0)


# ---------------------------------------------------------------------------
# leveler


class TestLeveler:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="budget"):
            LevelerPolicy(budget=-1)
        with pytest.raises(ConfigurationError, match="min_gap"):
            LevelerPolicy(min_gap=-0.1)

    def test_short_risk_vector_is_rejected(self):
        decoder = _decoder()
        with pytest.raises(ConfigurationError, match="risk vector"):
            plan_swaps(decoder, np.ones(decoder.global_blocks),
                       np.zeros(1), [0, 1, 2], LevelerPolicy())

    def test_quiet_below_the_gap_threshold(self):
        decoder = _decoder()
        probabilities = np.ones(decoder.global_blocks)
        risks = np.array([0.50, 0.505, 0.51])
        swaps = plan_swaps(decoder, probabilities, risks, [0, 1, 2],
                           LevelerPolicy(budget=8, min_gap=0.02))
        assert swaps == []

    def test_moves_hot_mass_off_the_risky_shard(self):
        decoder = _decoder()
        probabilities = np.zeros(decoder.global_blocks)
        # Concentrate traffic on shard 0's addresses.
        owned = np.nonzero(decoder.shard_of(
            np.arange(decoder.global_blocks, dtype=np.int64)) == 0)[0]
        probabilities[owned] = 1.0
        probabilities += 1e-3
        risks = np.array([0.9, 0.1, 0.1])
        before = decoder.shard_masses(probabilities)
        swaps = plan_swaps(decoder, probabilities, risks, [0, 1, 2],
                           LevelerPolicy(budget=8, min_gap=0.02))
        after = decoder.shard_masses(probabilities)
        assert swaps
        assert len(swaps) <= 8
        assert after[0] < before[0]
        # The mass-inversion guard: the donor never drops below the
        # receiver it shed to.
        assert after[0] >= after[1] - 1e-9

    def test_head_heavy_distribution_still_finds_fitting_swaps(self):
        # A single address holding most of the mass cannot move without
        # inverting the ordering — the leveler must skip it and steer
        # the next-hottest addresses instead of going quiet.
        decoder = _decoder()
        probabilities = np.full(decoder.global_blocks, 1e-3)
        owned = np.nonzero(decoder.shard_of(
            np.arange(decoder.global_blocks, dtype=np.int64)) == 0)[0]
        probabilities[owned[0]] = 100.0   # immovable head
        probabilities[owned[1:9]] = 1.0   # steerable hot set
        risks = np.array([0.9, 0.1, 0.1])
        swaps = plan_swaps(decoder, probabilities, risks, [0, 1, 2],
                           LevelerPolicy(budget=4, min_gap=0.02))
        assert swaps
        assert owned[0] not in {hot for hot, _cold in swaps}

    def test_single_survivor_means_no_swaps(self):
        decoder = _decoder()
        swaps = plan_swaps(decoder, np.ones(decoder.global_blocks),
                           np.array([0.9, 0.1, 0.1]), [0],
                           LevelerPolicy())
        assert swaps == []


# ---------------------------------------------------------------------------
# array integration


def _array_result(balance=False, add_at=None, schedule=None, jobs=1,
                  policy="degraded"):
    config = ArrayConfig(num_shards=3, shard_blocks=128, interleave="page",
                         page_blocks=16, mean_endurance=100.0,
                         batch_writes=500, seed=7, policy=policy,
                         balance=balance,
                         balance_every=2000 if balance else None,
                         remap_budget=32, add_shard_at=add_at)
    decoder = InterleavedDecoder(config.num_shards, config.software_blocks,
                                 interleave="page", page_blocks=16)
    workload = zipf_workload(decoder, exponent=1.0, seed=7)
    engine = ArrayEngine(config, workload, label="balance-test", jobs=jobs,
                         schedule=schedule)
    return engine.run()


def _first_death(result):
    deaths = [shard.died_at_global for shard in result.report.shards
              if shard.died_at_global is not None]
    return min(deaths) if deaths else None


class TestArrayBalance:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="remap_budget"):
            ArrayConfig(remap_budget=-1)
        with pytest.raises(ConfigurationError, match="balance_every"):
            ArrayConfig(balance=True, balance_every=0)
        with pytest.raises(ConfigurationError, match="add_shard_at"):
            ArrayConfig(add_shard_at=0)

    def test_steering_extends_full_capacity_lifetime(self):
        static = _array_result()
        balanced = _array_result(balance=True)
        assert _first_death(balanced) > _first_death(static)
        counters = balanced.snapshot["counters"]
        assert counters["balance.remap-swaps"] > 0
        # Every swap is charged as two migration writes.
        assert counters["balance.migration-writes"] \
            == 2 * counters["balance.remap-swaps"]

    def test_add_shard_grows_the_array(self):
        grown = _array_result(balance=True, add_at=4000)
        assert grown.report.num_shards == 4
        assert len(grown.report.shards) == 4
        counters = grown.snapshot["counters"]
        assert counters["balance.shards-added"] == 1
        assert counters["balance.migration-writes"] > 0
        # The late-joining shard actually absorbs traffic.
        assert grown.report.shards[3].local_writes > 0

    def test_balanced_results_are_jobs_invariant(self):
        schedule = shard_death_schedule(1, 1500, 128)
        one = _array_result(balance=True, add_at=4000, schedule=schedule,
                            jobs=1)
        two = _array_result(balance=True, add_at=4000, schedule=schedule,
                            jobs=2)
        assert json.dumps(one.as_dict(), sort_keys=True) \
            == json.dumps(two.as_dict(), sort_keys=True)

    def test_kill_schedule_composes_with_growth(self):
        schedule = shard_death_schedule(1, 1500, 128)
        result = _array_result(balance=True, add_at=4000,
                               schedule=schedule)
        assert 1 in result.report.dead_shards
        assert result.report.num_shards == 4

    def test_health_gauges_reach_the_snapshot(self):
        result = _array_result(balance=True)
        gauges = result.snapshot["gauges"]
        assert gauges["balance.headroom"]["mode"] == "min"
        assert all(f"balance.s{i}.risk" in gauges for i in range(3))

    def test_fail_stop_policy_still_supported(self):
        result = _array_result(balance=True, policy="fail-stop")
        assert result.report.stop is not None

    def test_array_cli_balance_flags(self, tmp_path, capsys):
        from repro.array.__main__ import main
        out = tmp_path / "balance.json"
        code = main(["--shards", "3", "--shard-blocks", "128",
                     "--interleave", "page", "--workload", "zipf",
                     "--mean", "100", "--batch-writes", "500",
                     "--balance", "--balance-every", "2000",
                     "--remap-budget", "32", "--add-shard-at", "4000",
                     "--json", str(out)])
        assert code == 0
        assert "balance:" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["report"]["num_shards"] == 4


# ---------------------------------------------------------------------------
# serve integration


def _serve_config(**overrides):
    base = dict(num_shards=3, shard_blocks=128, page_blocks=16,
                interleave="page", total_requests=1200, seed=7,
                mean_endurance=2.0, brownout_wear=1.0)
    base.update(overrides)
    return ServeConfig(**base)


class TestServeBalance:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="rebalance_every"):
            _serve_config(rebalance_every=0)
        with pytest.raises(ConfigurationError, match="remap_budget"):
            _serve_config(remap_budget=-1)
        with pytest.raises(ConfigurationError, match="add_shard_at"):
            _serve_config(add_shard_at=0)

    def test_live_scale_out_keeps_the_zero_drop_identity(self):
        config = _serve_config(balance=True, rebalance_every=25,
                               remap_budget=16, add_shard_at=400)
        result = ServiceEngine(config).run(jobs=1)
        assert sum(result.outcomes.values()) == config.total_requests
        counters = result.snapshot["counters"]
        assert counters["serve.shards_added"] == 1
        assert counters["serve.migrated"] > 0
        assert result.report["shards"]["total"] == 4

    def test_balanced_serve_is_jobs_invariant(self):
        schedule = shard_death_schedule(1, 100, 128)
        config = _serve_config(balance=True, rebalance_every=25,
                               remap_budget=16, add_shard_at=400)
        one = ServiceEngine(config, schedule=schedule).run(jobs=1)
        two = ServiceEngine(config, schedule=schedule).run(jobs=2)
        assert one.to_json() == two.to_json()

    def test_kill_composes_with_growth(self):
        schedule = shard_death_schedule(1, 100, 128)
        config = _serve_config(balance=True, rebalance_every=25,
                               remap_budget=16, add_shard_at=400)
        result = ServiceEngine(config, schedule=schedule).run(jobs=1)
        assert result.snapshot["counters"]["serve.deaths"] == 1
        assert result.report["shards"]["total"] == 4
        assert result.report["shards"]["live"] == 3
        assert sum(result.outcomes.values()) == config.total_requests

    def test_steering_reduces_the_wear_spread(self):
        def wears(balance):
            config = _serve_config(balance=balance, rebalance_every=25,
                                   remap_budget=16, total_requests=1600,
                                   num_shards=4)
            engine = ServiceEngine(config)
            engine.run(jobs=1)
            return [station.writes_served for station in engine.stations]
        static = wears(False)
        balanced = wears(True)
        assert max(balanced) - min(balanced) < max(static) - min(static)

    def test_legacy_serve_snapshot_is_unchanged(self):
        # The balance fields default off: the engine must construct the
        # plain InterleavedDecoder and add no balance metrics.
        config = _serve_config()
        engine = ServiceEngine(config)
        assert isinstance(engine.decoder, InterleavedDecoder)
        result = engine.run(jobs=1)
        counters = result.snapshot["counters"]
        assert "serve.remap_swaps" not in counters
        assert "serve.migrated" not in counters
        assert not any(name.startswith("balance.")
                       for name in result.snapshot["gauges"])

    def test_serve_cli_balance_flags(self, tmp_path, capsys):
        from repro.serve.__main__ import main
        out = tmp_path / "serve.json"
        code = main(["--shards", "3", "--shard-blocks", "128",
                     "--interleave", "page", "--requests", "1200",
                     "--mean-endurance", "2.0", "--brownout-wear", "1.0",
                     "--balance", "--rebalance-every", "25",
                     "--remap-budget", "16", "--add-shard-at", "400",
                     "--json", str(out)])
        assert code == 0
        assert "balance:" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["report"]["shards"]["total"] == 4
