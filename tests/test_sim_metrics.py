"""Unit tests for the metric collectors."""

import pytest

from repro.sim import LifetimeSeries, LifetimeSummary


def make_series() -> LifetimeSeries:
    series = LifetimeSeries(label="test")
    series.record(0, 1.0, 1.0)
    series.record(100, 0.95, 0.9, avg_access=1.01)
    series.record(200, 0.80, 0.7, avg_access=1.02)
    series.record(300, 0.65, 0.5, avg_access=1.05)
    return series


class TestLifetimeSeries:
    def test_total_writes(self):
        assert make_series().total_writes == 300
        assert LifetimeSeries().total_writes == 0

    def test_writes_to_survival(self):
        series = make_series()
        assert series.writes_to_survival(0.95) == 100
        assert series.writes_to_survival(0.7) == 300
        assert series.writes_to_survival(0.1) is None

    def test_writes_to_usable(self):
        series = make_series()
        assert series.writes_to_usable(0.7) == 200
        assert series.writes_to_usable(0.05) is None

    def test_point_lookup(self):
        series = make_series()
        assert series.survival_at(150) == 0.95
        assert series.survival_at(200) == 0.80
        assert series.usable_at(250) == 0.7
        # Before any sample: pristine chip.
        assert series.survival_at(-1) == 1.0

    def test_empty_series_lookup(self):
        series = LifetimeSeries()
        assert series.survival_at(1000) == 1.0

    def test_trimmed(self):
        trimmed = make_series().trimmed(0.8)
        assert len(trimmed.points) == 3
        assert trimmed.points[-1].survival == 0.80


class TestLifetimeSummary:
    def test_from_series(self):
        summary = LifetimeSummary.from_series(make_series(), os_reports=4)
        assert summary.lifetime_writes == 300
        assert summary.final_survival == 0.65
        assert summary.final_usable == 0.5
        assert summary.avg_access == pytest.approx(1.05)
        assert summary.os_reports == 4

    def test_from_empty_series(self):
        summary = LifetimeSummary.from_series(LifetimeSeries(label="x"))
        assert summary.lifetime_writes == 0
        assert summary.final_survival == 1.0
