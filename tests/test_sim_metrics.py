"""Unit tests for the metric collectors."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import LifetimeSeries, LifetimeSummary


def make_series() -> LifetimeSeries:
    series = LifetimeSeries(label="test")
    series.record(0, 1.0, 1.0)
    series.record(100, 0.95, 0.9, avg_access=1.01)
    series.record(200, 0.80, 0.7, avg_access=1.02)
    series.record(300, 0.65, 0.5, avg_access=1.05)
    return series


class TestLifetimeSeries:
    def test_total_writes(self):
        assert make_series().total_writes == 300
        assert LifetimeSeries().total_writes == 0

    def test_writes_to_survival(self):
        series = make_series()
        assert series.writes_to_survival(0.95) == 100
        assert series.writes_to_survival(0.7) == 300
        assert series.writes_to_survival(0.1) is None

    def test_writes_to_usable(self):
        series = make_series()
        assert series.writes_to_usable(0.7) == 200
        assert series.writes_to_usable(0.05) is None

    def test_point_lookup(self):
        series = make_series()
        assert series.survival_at(150) == 0.95
        assert series.survival_at(200) == 0.80
        assert series.usable_at(250) == 0.7
        # Before any sample: pristine chip.
        assert series.survival_at(-1) == 1.0

    def test_empty_series_lookup(self):
        series = LifetimeSeries()
        assert series.survival_at(1000) == 1.0

    def test_trimmed(self):
        trimmed = make_series().trimmed(0.8)
        assert len(trimmed.points) == 3
        assert trimmed.points[-1].survival == 0.80

    def test_sample_at_carries_forward(self):
        series = make_series()
        assert series.sample_at(150).writes == 100
        assert series.sample_at(100).survival == 0.95
        # Before the first sample: a pristine synthetic point.
        pristine = LifetimeSeries().sample_at(500)
        assert (pristine.writes, pristine.survival, pristine.usable) \
            == (0, 1.0, 1.0)


def two_shards():
    a = LifetimeSeries(label="a")
    a.record(0, 1.0, 1.0)
    a.record(100, 0.9, 0.8, avg_access=2.0)
    b = LifetimeSeries(label="b")
    b.record(0, 1.0, 1.0)
    b.record(200, 0.5, 0.4, avg_access=4.0)
    return a, b


class TestLifetimeSeriesMerge:
    def test_grid_defaults_to_union_of_sample_writes(self):
        merged = LifetimeSeries.merge(two_shards())
        assert [p.writes for p in merged.points] == [0, 100, 200]
        assert merged.label == "merged"

    def test_point_wise_weighted_mean_with_carry_forward(self):
        merged = LifetimeSeries.merge(two_shards())
        # At 100: a has sampled (0.9, 0.8); b carries forward (1.0, 1.0).
        at_100 = merged.sample_at(100)
        assert at_100.survival == pytest.approx(0.95)
        assert at_100.usable == pytest.approx(0.9)
        # At 200: both have sampled.
        at_200 = merged.sample_at(200)
        assert at_200.survival == pytest.approx(0.7)
        assert at_200.usable == pytest.approx(0.6)

    def test_capacity_weights_shift_the_mean(self):
        merged = LifetimeSeries.merge(two_shards(), weights=[3.0, 1.0])
        at_200 = merged.sample_at(200)
        assert at_200.survival == pytest.approx((3 * 0.9 + 0.5) / 4)
        assert at_200.usable == pytest.approx((3 * 0.8 + 0.4) / 4)

    def test_avg_access_is_write_weighted(self):
        merged = LifetimeSeries.merge(two_shards())
        # At 200: a absorbed 100 writes at access 2.0, b 200 at 4.0.
        expected = (100 * 2.0 + 200 * 4.0) / 300
        assert merged.sample_at(200).avg_access == pytest.approx(expected)
        # At 0 nothing has been written: access mean is defined as 0.
        assert merged.sample_at(0).avg_access == 0.0

    def test_explicit_grid_aligns_the_output(self):
        merged = LifetimeSeries.merge(two_shards(), grid=[50, 150, 250])
        assert [p.writes for p in merged.points] == [50, 150, 250]
        # 150 sees a's 100-write sample and b's pristine carry-forward.
        assert merged.sample_at(150).survival == pytest.approx(0.95)

    def test_single_series_round_trips(self):
        series = make_series()
        merged = LifetimeSeries.merge([series], label="solo")
        assert merged.points == series.points
        assert merged.label == "solo"

    def test_validation_errors(self):
        a, b = two_shards()
        with pytest.raises(ConfigurationError, match="at least one"):
            LifetimeSeries.merge([])
        with pytest.raises(ConfigurationError, match="weights"):
            LifetimeSeries.merge([a, b], weights=[1.0])
        with pytest.raises(ConfigurationError, match="non-negative"):
            LifetimeSeries.merge([a, b], weights=[1.0, -1.0])
        with pytest.raises(ConfigurationError, match="not all be zero"):
            LifetimeSeries.merge([a, b], weights=[0.0, 0.0])
        with pytest.raises(ConfigurationError, match="access weights"):
            LifetimeSeries.merge([a, b], access_weights=[1.0])


class TestLifetimeSummary:
    def test_from_series(self):
        summary = LifetimeSummary.from_series(make_series(), os_reports=4)
        assert summary.lifetime_writes == 300
        assert summary.final_survival == 0.65
        assert summary.final_usable == 0.5
        assert summary.avg_access == pytest.approx(1.05)
        assert summary.os_reports == 4

    def test_from_empty_series(self):
        summary = LifetimeSummary.from_series(LifetimeSeries(label="x"))
        assert summary.lifetime_writes == 0
        assert summary.final_survival == 1.0
