"""End-to-end integration and theorem property tests.

These drive complete systems (chip + ECC + wear-leveler + OS + WL-Reviver)
through their whole life under randomized workloads, asserting the paper's
three theorems and full data integrity at every stage — the strongest
correctness evidence in the suite.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ReviverConfig, SecurityRefreshConfig
from repro.errors import CapacityExhaustedError
from repro.mc import ReviverController
from repro.osmodel import PagePool
from repro.reviver import RetiredPageBitmap
from repro.wl import SecurityRefresh

from .conftest import (
    assert_data_consistent,
    drive_random_writes,
    make_chip,
    make_reviver_system,
)


def make_secref_system(num_blocks: int = 128, mean: float = 400.0,
                       seed: int = 11):
    chip = make_chip(num_blocks=num_blocks, mean=mean, seed=seed)
    wear_leveler = SecurityRefresh(
        num_blocks, config=SecurityRefreshConfig(refresh_interval=50))
    ospool = PagePool(wear_leveler.logical_blocks, blocks_per_page=8,
                      utilization=0.8, seed=5)
    controller = ReviverController(
        chip, wear_leveler, ospool,
        reviver_config=ReviverConfig(check_invariants=True),
        copy_on_retire=True)
    return controller, chip


class TestSecurityRefreshRevival:
    """The framework claim: *any* scheme works unmodified."""

    def test_secref_data_survives_heavy_failure(self):
        controller, chip = make_secref_system(mean=300)
        rng = random.Random(5)
        expected = {}
        space = controller.ospool.virtual_blocks
        try:
            step = 0
            while chip.failed_fraction() < 0.35 and step < 40_000:
                vblock = rng.randrange(space)
                controller.service_write(vblock, tag=step)
                expected[vblock] = step
                step += 1
        except CapacityExhaustedError:
            pass
        assert chip.failed_fraction() > 0.1
        assert_data_consistent(controller, expected)

    def test_secref_failures_hidden_from_scheme(self):
        controller, chip = make_secref_system(mean=300)
        drive_random_writes(controller, 15_000)
        assert chip.failed_count > 0
        assert not controller.wl.frozen  # the scheme never noticed


class TestTheoremsUnderRandomTraffic:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_theorems_hold_at_random_checkpoints(self, seed):
        """Property: Theorems 1-3 hold after any prefix of any workload."""
        controller, chip, _, _ = make_reviver_system(
            mean=250, seed=11, check_invariants=False)
        rng = random.Random(seed)
        space = controller.ospool.virtual_blocks
        checkpoint = rng.randrange(500, 6_000)
        try:
            for step in range(checkpoint):
                controller.service_write(rng.randrange(space), tag=step)
        except CapacityExhaustedError:
            return
        controller.check_invariants()

    def test_loops_never_receive_software_traffic(self):
        """Theorem 3's consequence, observed rather than assumed."""
        controller, chip, wear_leveler, _ = make_reviver_system(mean=250)
        drive_random_writes(controller, 8_000)
        links = controller.reviver.links
        loops = [da for da in links.linked_blocks()
                 if wear_leveler.map(links.vpa_of(da)) == da]
        for da in loops:
            mapper = wear_leveler.inverse(da)
            # The only PA mapping onto a loop block is its own VPA,
            # which software cannot address.
            assert mapper == links.vpa_of(da)
            assert controller.reviver.is_reserved_pa(mapper)


class TestRebootPath:
    def test_bitmap_restores_retired_pages(self):
        controller, chip, _, ospool = make_reviver_system(mean=200)
        drive_random_writes(controller, 10_000)
        bitmap = controller.reviver.bitmap
        if bitmap.retired_count == 0:
            pytest.skip("no page was acquired in this run")
        restored = RetiredPageBitmap.from_bytes(bitmap.to_bytes(),
                                                bitmap.num_pages)
        assert restored.retired_pages() == bitmap.retired_pages()
        # The restored set matches the OS's view of retired pages.
        os_retired = [p.page_id for p in ospool.pages if not p.is_usable]
        assert restored.retired_pages() == sorted(os_retired)


class TestCrossSchemeEquivalence:
    def test_reviver_stats_comparable_across_schemes(self):
        """Start-Gap and Security Refresh systems hide failures with the
        same machinery: roughly one OS report per shadow-section of
        failures, independent of the scheme."""
        results = {}
        for name, maker in (("startgap",
                             lambda: make_reviver_system(mean=300)[0]),
                            ("secref",
                             lambda: make_secref_system(mean=300)[0])):
            controller = maker()
            drive_random_writes(controller, 15_000)
            stats = controller.reviver.stats()
            if stats["os_reports"]:
                ratio = (stats["linked_blocks"] / stats["os_reports"])
                results[name] = ratio
        for name, ratio in results.items():
            # <= slots-per-page (7 with the test page size), > 0.
            assert 0 < ratio <= 7.5, (name, ratio)
