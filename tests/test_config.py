"""Unit tests for the configuration dataclasses."""

import pytest

from repro.config import (
    CacheConfig,
    LLSConfig,
    PCMConfig,
    ReviverConfig,
    SecurityRefreshConfig,
    SimConfig,
    StartGapConfig,
)
from repro.errors import ConfigurationError
from repro.units import GIB


class TestPCMConfig:
    def test_defaults_are_consistent(self):
        config = PCMConfig()
        assert config.blocks_per_page == 64
        assert config.num_pages * config.blocks_per_page == config.num_blocks

    def test_paper_scale(self):
        config = PCMConfig.paper_scale()
        assert config.capacity_bytes == GIB
        assert config.mean_endurance == 1e8
        assert config.endurance_cov == 0.2

    def test_scaled_override(self):
        config = PCMConfig().scaled(num_blocks=1 << 10)
        assert config.num_blocks == 1 << 10

    @pytest.mark.parametrize("kwargs", [
        dict(num_blocks=0),
        dict(num_blocks=100),          # not a whole number of pages
        dict(mean_endurance=0),
        dict(endurance_cov=-0.1),
        dict(endurance_cov=1.0),
        dict(page_bytes=1000),         # not a multiple of block size
        dict(cells_per_block=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PCMConfig(**kwargs)


class TestStartGapConfig:
    def test_paper_default_psi(self):
        assert StartGapConfig().psi == 100

    @pytest.mark.parametrize("kwargs", [
        dict(psi=0), dict(randomizer="bogus"), dict(feistel_rounds=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            StartGapConfig(**kwargs)


class TestSecurityRefreshConfig:
    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            SecurityRefreshConfig(refresh_interval=0)


class TestReviverConfig:
    def test_paper_pointer_layout(self):
        # 64-block page, 64 B blocks, 32-bit pointers: 16 pointers per
        # block -> 4 pointer blocks, 60 shadow slots (Figure 4).
        config = ReviverConfig()
        assert config.pointer_section_blocks(64, 64) == 4

    def test_small_page_layout(self):
        # 8-block page: one pointer block covers the other 7 slots.
        assert ReviverConfig().pointer_section_blocks(8, 64) == 1

    def test_wide_pointers_use_more_blocks(self):
        narrow = ReviverConfig(pointer_bits=16).pointer_section_blocks(64, 64)
        wide = ReviverConfig(pointer_bits=64).pointer_section_blocks(64, 64)
        assert wide >= narrow

    def test_rejects_bad_pointer_bits(self):
        with pytest.raises(ConfigurationError):
            ReviverConfig(pointer_bits=12)
        with pytest.raises(ConfigurationError):
            ReviverConfig(pointer_bits=0)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ConfigurationError):
            ReviverConfig(bitmap_replicas=0)


class TestLLSConfig:
    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            LLSConfig(chunk_blocks=0)
        with pytest.raises(ConfigurationError):
            LLSConfig(num_groups=0)


class TestCacheConfig:
    def test_capacity_must_divide(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_entries=10, associativity=4)

    def test_valid(self):
        config = CacheConfig(capacity_entries=16, associativity=4)
        assert config.capacity_entries // config.associativity == 4


class TestSimConfig:
    def test_defaults(self):
        config = SimConfig()
        assert config.dead_fraction == 0.3

    @pytest.mark.parametrize("kwargs", [
        dict(dead_fraction=0.0), dict(dead_fraction=1.5),
        dict(max_writes=0), dict(sample_interval=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimConfig(**kwargs)
