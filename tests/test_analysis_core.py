"""Framework behaviour: suppressions, PARSE/ALLOW-REASON, CLI contract.

Also pins the tree-wide guarantee CI enforces: linting the real ``src``,
``tools``, ``benchmarks`` and ``examples`` trees yields zero findings.
"""

import ast
import json
from io import StringIO
from pathlib import Path

from repro.analysis import (AnalysisCache, all_rules, apply_baseline,
                            lint_paths, lint_source, load_baseline, to_sarif,
                            validate_sarif, write_baseline)
from repro.analysis.cli import main
from repro.analysis.runner import iter_python_files

FAKE = Path("src/repro/mc/controller.py")

BAD_LINE = "page = pa // blocks_per_page\n"


class TestSuppressions:
    def test_same_line_allow_suppresses(self):
        text = ("page = pa // blocks_per_page  "
                "# repro: allow(RAW-GEOM): fixture justification\n")
        assert lint_source(text, FAKE) == []

    def test_allow_only_covers_named_rule(self):
        text = ("page = pa // blocks_per_page  "
                "# repro: allow(FLOAT-EQ): wrong rule named\n")
        assert [f.rule for f in lint_source(text, FAKE)] == ["RAW-GEOM"]

    def test_file_wide_allow_suppresses_everywhere(self):
        text = ("# repro: allow-file(RAW-GEOM): fixture justification\n"
                "a = pa // blocks_per_page\n"
                "b = pa % blocks_per_page\n")
        assert lint_source(text, FAKE) == []

    def test_allow_without_reason_is_itself_a_finding(self):
        text = "page = pa // blocks_per_page  # repro: allow(RAW-GEOM)\n"
        rules = sorted(f.rule for f in lint_source(text, FAKE))
        assert rules == ["ALLOW-REASON"]

    def test_multi_rule_allow(self):
        text = ("x = bpp * n if y == 0.5 else 0  "
                "# repro: allow(RAW-GEOM, FLOAT-EQ): fixture justification\n")
        assert lint_source(text, FAKE) == []


class TestFrameworkFindings:
    def test_unparseable_file_reports_parse(self):
        found = lint_source("def broken(:\n", FAKE)
        assert [f.rule for f in found] == ["PARSE"]

    def test_findings_sorted_by_position(self):
        text = ("import random\n"
                "page = pa // blocks_per_page\n"
                "if x == 0.5:\n"
                "    pass\n")
        found = lint_source(text, FAKE)
        assert [f.rule for f in found] == ["RNG-DET", "RAW-GEOM", "FLOAT-EQ"]
        assert [f.line for f in found] == [1, 2, 3]

    def test_render_format_is_clickable(self):
        finding = lint_source(BAD_LINE, FAKE)[0]
        assert finding.render().startswith(
            "src/repro/mc/controller.py:1:")
        assert "RAW-GEOM" in finding.render()


class TestCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_clean_file_exits_zero(self, tmp_path):
        path = self._write(tmp_path, "clean.py", "x = 1\n")
        out = StringIO()
        assert main([str(path)], stream=out) == 0
        assert "0 findings" in out.getvalue()

    def test_findings_exit_one_text(self, tmp_path):
        path = self._write(tmp_path, "bad.py", BAD_LINE)
        out = StringIO()
        assert main([str(path)], stream=out) == 1
        assert "RAW-GEOM" in out.getvalue()
        assert "1 finding" in out.getvalue()

    def test_json_output_parses(self, tmp_path):
        path = self._write(tmp_path, "bad.py", BAD_LINE + "import random\n")
        out = StringIO()
        assert main([str(path), "--format", "json"], stream=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["count"] == 2
        assert {f["rule"] for f in payload["findings"]} \
            == {"RAW-GEOM", "RNG-DET"}

    def test_select_restricts_rules(self, tmp_path):
        path = self._write(tmp_path, "bad.py", BAD_LINE + "import random\n")
        out = StringIO()
        assert main([str(path), "--select", "RNG-DET"], stream=out) == 1
        assert "RAW-GEOM" not in out.getvalue()

    def test_unknown_rule_exits_two(self, tmp_path):
        out = StringIO()
        assert main([str(tmp_path), "--select", "NOPE"], stream=out) == 2

    def test_missing_path_exits_two(self, tmp_path):
        out = StringIO()
        assert main([str(tmp_path / "absent")], stream=out) == 2

    def test_list_rules_describes_all_eleven(self):
        out = StringIO()
        assert main(["--list-rules"], stream=out) == 0
        text = out.getvalue()
        for rule_id in ("RAW-GEOM", "RNG-DET", "LINK-MUT", "EXC-SWALLOW",
                        "FLOAT-EQ", "FAULT-HOOK", "TELEM-API", "SOA-ALIAS",
                        "SHM-LIFE", "DET-WALLCLOCK", "HOOK-NONE"):
            assert rule_id in text


class TestFileDiscovery:
    def test_directory_plus_member_file_lints_once(self, tmp_path):
        # Regression: passing a directory and a file inside it used to
        # lint (and report) the file twice.
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LINE, encoding="utf-8")
        files = iter_python_files([tmp_path, bad])
        assert files == [bad]
        findings = lint_paths([tmp_path, bad])
        assert [f.rule for f in findings] == ["RAW-GEOM"]

    def test_same_path_twice_lints_once(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LINE, encoding="utf-8")
        assert iter_python_files([bad, bad]) == [bad]
        assert len(lint_paths([bad, bad])) == 1

    def test_discovery_order_is_sorted(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("x = 1\n", encoding="utf-8")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


class TestParseColumnClamp:
    def test_offset_zero_never_renders_column_zero(self, tmp_path,
                                                   monkeypatch):
        # CPython >= 3.11 reports 1-based offsets, but tokenizer-layer
        # errors historically surfaced offset 0; the rendered 1-based
        # column must clamp to 1 rather than underflow to `:0`.
        def raise_offset_zero(*args, **kwargs):
            exc = SyntaxError("forced tokenizer error")
            exc.lineno = 2
            exc.offset = 0
            raise exc

        monkeypatch.setattr(ast, "parse", raise_offset_zero)
        found = lint_source("x = (\n!\n", FAKE)
        assert [f.rule for f in found] == ["PARSE"]
        assert found[0].line == 2
        assert found[0].col == 0
        assert ":2:1:" in found[0].render()

    def test_offset_none_clamps_too(self, monkeypatch):
        def raise_offset_none(*args, **kwargs):
            exc = SyntaxError("no position at all")
            exc.lineno = None
            exc.offset = None
            raise exc

        monkeypatch.setattr(ast, "parse", raise_offset_none)
        found = lint_source("x = 1\n", FAKE)
        assert [(f.line, f.col) for f in found] == [(1, 0)]


class TestSuppressionEdgeCases:
    def test_allow_file_with_multiple_rule_ids(self):
        text = ("# repro: allow-file(RAW-GEOM, RNG-DET): fixture covers "
                "both rules\n"
                "import random\n"
                "page = pa // blocks_per_page\n"
                "if x == 0.5:\n"
                "    pass\n")
        assert [f.rule for f in lint_source(text, FAKE)] == ["FLOAT-EQ"]

    def test_allow_inside_multiline_expression_anchors_to_its_line(self):
        # The comment sits on the physical line of the flagged operation
        # inside a parenthesized expression; tokenize-based matching must
        # attach it there, not to the statement's first line.
        text = ("total = (\n"
                "    pa // blocks_per_page  "
                "# repro: allow(RAW-GEOM): fixture justification\n"
                ")\n")
        assert lint_source(text, FAKE) == []

    def test_allow_on_wrong_line_of_multiline_does_not_suppress(self):
        text = ("total = (  # repro: allow(RAW-GEOM): wrong physical line\n"
                "    pa // blocks_per_page\n"
                ")\n")
        assert [f.rule for f in lint_source(text, FAKE)] == ["RAW-GEOM"]

    def test_allow_reason_column_points_at_comment(self):
        text = "page = pa // blocks_per_page  # repro: allow(RAW-GEOM)\n"
        found = lint_source(text, FAKE)
        assert [f.rule for f in found] == ["ALLOW-REASON"]
        # 0-based column of the `#` (rendered 1-based by render()).
        assert found[0].col == text.index("#")
        assert f":1:{text.index('#') + 1}:" in found[0].render()


class TestBaseline:
    def _findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LINE + "import random\n", encoding="utf-8")
        return bad, lint_paths([bad])

    def test_round_trip_filters_known_findings(self, tmp_path):
        bad, findings = self._findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        new, stale = apply_baseline(findings, baseline)
        assert new == [] and stale == []

    def test_new_findings_survive_the_filter(self, tmp_path):
        bad, findings = self._findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings[:1])
        new, stale = apply_baseline(findings, load_baseline(baseline_file))
        assert [f.rule for f in new] == [findings[1].rule]
        assert stale == []

    def test_fixed_findings_report_stale_entries(self, tmp_path):
        bad, findings = self._findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        new, stale = apply_baseline([], load_baseline(baseline_file))
        assert new == [] and len(stale) == 2

    def test_baseline_is_line_insensitive(self, tmp_path):
        bad, findings = self._findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        # Shift every finding down two lines: still baselined.
        bad.write_text("\n\n" + BAD_LINE + "import random\n",
                       encoding="utf-8")
        new, stale = apply_baseline(lint_paths([bad]),
                                    load_baseline(baseline_file))
        assert new == [] and stale == []

    def test_cli_baseline_flags(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LINE, encoding="utf-8")
        baseline_file = tmp_path / "baseline.json"
        out = StringIO()
        assert main([str(bad), "--write-baseline", str(baseline_file)],
                    stream=out) == 0
        out = StringIO()
        assert main([str(bad), "--baseline", str(baseline_file)],
                    stream=out) == 0
        assert "baselined" in out.getvalue()
        # Fixing the finding turns the baseline entry stale: exit 1 so
        # the entry gets deleted rather than rotting.
        bad.write_text("x = 1\n", encoding="utf-8")
        out = StringIO()
        assert main([str(bad), "--baseline", str(baseline_file)],
                    stream=out) == 1
        assert "stale" in out.getvalue()


class TestIncrementalCache:
    def test_unchanged_tree_replays_with_zero_parses(self, tmp_path):
        for name, text in (("bad.py", BAD_LINE), ("ok.py", "x = 1\n")):
            (tmp_path / name).write_text(text, encoding="utf-8")
        cache_file = tmp_path / "cache.json"
        first = AnalysisCache(cache_file)
        cold = lint_paths([tmp_path], cache=first)
        assert first.stats.misses == 1 and first.stats.hits == 0
        assert first.stats.parses == 2
        # Fresh cache object (new process): warm run does zero re-parses.
        second = AnalysisCache(cache_file)
        warm = lint_paths([tmp_path], cache=second)
        assert second.stats.hits == 1 and second.stats.misses == 0
        assert second.stats.parses == 0
        assert [f.as_dict() for f in warm] == [f.as_dict() for f in cold]

    def test_content_change_invalidates(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n", encoding="utf-8")
        cache_file = tmp_path / "cache.json"
        lint_paths([tmp_path], cache=AnalysisCache(cache_file))
        path.write_text(BAD_LINE, encoding="utf-8")
        stale = AnalysisCache(cache_file)
        findings = lint_paths([tmp_path], cache=stale)
        assert stale.stats.misses == 1 and stale.stats.parses == 1
        assert [f.rule for f in findings] == ["RAW-GEOM"]

    def test_rule_selection_changes_the_key(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_LINE + "import random\n",
                                         encoding="utf-8")
        cache_file = tmp_path / "cache.json"
        lint_paths([tmp_path], cache=AnalysisCache(cache_file))
        narrowed = AnalysisCache(cache_file)
        findings = lint_paths(
            [tmp_path], rules=[r for r in all_rules() if r.id == "RNG-DET"],
            cache=narrowed)
        assert narrowed.stats.misses == 1
        assert [f.rule for f in findings] == ["RNG-DET"]

    def test_torn_cache_file_is_a_miss(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json", encoding="utf-8")
        cache = AnalysisCache(cache_file)
        assert lint_paths([tmp_path], cache=cache) == []
        assert cache.stats.misses == 1

    def test_cli_stats_flag_reports_counters(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        cache_file = tmp_path / "cache.json"
        argv = [str(tmp_path), "--cache", str(cache_file), "--stats"]
        out = StringIO()
        assert main(argv, stream=out) == 0
        assert "1 miss(es)" in out.getvalue()
        out = StringIO()
        assert main(argv, stream=out) == 0
        assert "1 hit(s)" in out.getvalue()
        assert "0 parse(s)" in out.getvalue()


class TestSarif:
    def test_emitted_document_validates(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LINE + "import random\n", encoding="utf-8")
        findings = lint_paths([bad])
        document = to_sarif(findings, all_rules())
        assert validate_sarif(document) == []
        results = document["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"RAW-GEOM", "RNG-DET"}
        # Columns are 1-based in SARIF (internal cols are 0-based).
        assert all(r["locations"][0]["physicalLocation"]["region"]
                   ["startColumn"] >= 1 for r in results)

    def test_cli_sarif_round_trips(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_LINE, encoding="utf-8")
        out = StringIO()
        assert main([str(bad), "--format", "sarif"], stream=out) == 1
        document = json.loads(out.getvalue())
        assert validate_sarif(document) == []
        assert document["version"] == "2.1.0"

    def test_validator_rejects_broken_documents(self):
        assert validate_sarif([]) != []
        assert validate_sarif({"version": "2.1.0", "runs": []}) != []
        bad_result = {
            "version": "2.1.0",
            "runs": [{"tool": {"driver": {"name": "x", "rules": []}},
                      "results": [{"ruleId": "R", "message": {},
                                   "locations": []}]}],
        }
        problems = validate_sarif(bad_result)
        assert any("message" in p for p in problems)
        assert any("locations" in p for p in problems)


class TestTreeIsClean:
    def test_all_linted_trees_have_zero_findings(self):
        root = Path(__file__).resolve().parent.parent
        trees = [root / name
                 for name in ("src", "tools", "benchmarks", "examples")
                 if (root / name).is_dir()]
        assert (root / "src") in trees
        findings = lint_paths(trees)
        assert findings == [], "\n".join(f.render() for f in findings)
