"""Framework behaviour: suppressions, PARSE/ALLOW-REASON, CLI contract.

Also pins the tree-wide guarantee CI enforces: linting the real ``src``
tree yields zero findings.
"""

import json
from io import StringIO
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.cli import main

FAKE = Path("src/repro/mc/controller.py")

BAD_LINE = "page = pa // blocks_per_page\n"


class TestSuppressions:
    def test_same_line_allow_suppresses(self):
        text = ("page = pa // blocks_per_page  "
                "# repro: allow(RAW-GEOM): fixture justification\n")
        assert lint_source(text, FAKE) == []

    def test_allow_only_covers_named_rule(self):
        text = ("page = pa // blocks_per_page  "
                "# repro: allow(FLOAT-EQ): wrong rule named\n")
        assert [f.rule for f in lint_source(text, FAKE)] == ["RAW-GEOM"]

    def test_file_wide_allow_suppresses_everywhere(self):
        text = ("# repro: allow-file(RAW-GEOM): fixture justification\n"
                "a = pa // blocks_per_page\n"
                "b = pa % blocks_per_page\n")
        assert lint_source(text, FAKE) == []

    def test_allow_without_reason_is_itself_a_finding(self):
        text = "page = pa // blocks_per_page  # repro: allow(RAW-GEOM)\n"
        rules = sorted(f.rule for f in lint_source(text, FAKE))
        assert rules == ["ALLOW-REASON"]

    def test_multi_rule_allow(self):
        text = ("x = bpp * n if y == 0.5 else 0  "
                "# repro: allow(RAW-GEOM, FLOAT-EQ): fixture justification\n")
        assert lint_source(text, FAKE) == []


class TestFrameworkFindings:
    def test_unparseable_file_reports_parse(self):
        found = lint_source("def broken(:\n", FAKE)
        assert [f.rule for f in found] == ["PARSE"]

    def test_findings_sorted_by_position(self):
        text = ("import random\n"
                "page = pa // blocks_per_page\n"
                "if x == 0.5:\n"
                "    pass\n")
        found = lint_source(text, FAKE)
        assert [f.rule for f in found] == ["RNG-DET", "RAW-GEOM", "FLOAT-EQ"]
        assert [f.line for f in found] == [1, 2, 3]

    def test_render_format_is_clickable(self):
        finding = lint_source(BAD_LINE, FAKE)[0]
        assert finding.render().startswith(
            "src/repro/mc/controller.py:1:")
        assert "RAW-GEOM" in finding.render()


class TestCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_clean_file_exits_zero(self, tmp_path):
        path = self._write(tmp_path, "clean.py", "x = 1\n")
        out = StringIO()
        assert main([str(path)], stream=out) == 0
        assert "0 findings" in out.getvalue()

    def test_findings_exit_one_text(self, tmp_path):
        path = self._write(tmp_path, "bad.py", BAD_LINE)
        out = StringIO()
        assert main([str(path)], stream=out) == 1
        assert "RAW-GEOM" in out.getvalue()
        assert "1 finding" in out.getvalue()

    def test_json_output_parses(self, tmp_path):
        path = self._write(tmp_path, "bad.py", BAD_LINE + "import random\n")
        out = StringIO()
        assert main([str(path), "--format", "json"], stream=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["count"] == 2
        assert {f["rule"] for f in payload["findings"]} \
            == {"RAW-GEOM", "RNG-DET"}

    def test_select_restricts_rules(self, tmp_path):
        path = self._write(tmp_path, "bad.py", BAD_LINE + "import random\n")
        out = StringIO()
        assert main([str(path), "--select", "RNG-DET"], stream=out) == 1
        assert "RAW-GEOM" not in out.getvalue()

    def test_unknown_rule_exits_two(self, tmp_path):
        out = StringIO()
        assert main([str(tmp_path), "--select", "NOPE"], stream=out) == 2

    def test_missing_path_exits_two(self, tmp_path):
        out = StringIO()
        assert main([str(tmp_path / "absent")], stream=out) == 2

    def test_list_rules_describes_all_five(self):
        out = StringIO()
        assert main(["--list-rules"], stream=out) == 0
        text = out.getvalue()
        for rule_id in ("RAW-GEOM", "RNG-DET", "LINK-MUT",
                        "EXC-SWALLOW", "FLOAT-EQ"):
            assert rule_id in text


class TestTreeIsClean:
    def test_src_tree_has_zero_findings(self):
        src = Path(__file__).resolve().parent.parent / "src"
        assert src.is_dir()
        findings = lint_paths([src])
        assert findings == [], "\n".join(f.render() for f in findings)
