"""Protocol tests for the WLReviver orchestrator against a toy world."""

import pytest

from repro.config import ReviverConfig
from repro.errors import ProtocolError
from repro.osmodel import FaultReporter, PagePool
from repro.reviver import FaultContext, WLReviver


class Harness:
    """Minimal mapping + failure world around a WLReviver instance."""

    def __init__(self, blocks: int = 64, bpp: int = 8) -> None:
        self.mapping = {pa: pa for pa in range(blocks - 1)}
        self.failed = set()
        self.pool = PagePool(blocks - 1, blocks_per_page=bpp, seed=1)
        self.reporter = FaultReporter(self.pool)
        self.reviver = WLReviver(
            ReviverConfig(), self.reporter,
            map_fn=lambda pa: self.mapping[pa],
            inverse_fn=self.inverse,
            is_failed=lambda da: da in self.failed,
            blocks_per_page=bpp, block_bytes=64,
            num_pages=self.pool.num_pages)

    def inverse(self, da):
        for pa, mapped in self.mapping.items():
            if mapped == da:
                return pa
        return None

    def fail(self, da, context=FaultContext.SOFTWARE, victim_pa=None):
        self.failed.add(da)
        return self.reviver.handle_new_failure(
            da, context, victim_pa=victim_pa, at_write=0)


class TestFirstFailure:
    def test_first_software_failure_acquires_page(self):
        harness = Harness()
        assert harness.fail(10, victim_pa=10)
        assert harness.reviver.ledger.pages_acquired == 1
        assert harness.reporter.report_count == 1
        # The page of PA 10 (page 1: PAs 8..15) was retired.
        assert not harness.pool.is_usable(1)
        # 7 shadow slots acquired, one consumed by the link.
        assert harness.reviver.spares.available == 6
        assert harness.reviver.links.vpa_of(10) is not None

    def test_subsequent_failures_hidden(self):
        harness = Harness()
        harness.fail(10, victim_pa=10)
        for da in (20, 21, 22):
            assert harness.fail(da, victim_pa=da)
        assert harness.reporter.report_count == 1  # still only one report
        assert harness.reviver.hidden_failures == 3

    def test_page_acquired_again_when_spares_exhausted(self):
        harness = Harness()
        harness.fail(10, victim_pa=10)
        for da in range(20, 27):  # consume the remaining 6 spares + 1 more
            harness.fail(da, victim_pa=da)
        assert harness.reporter.report_count == 2
        assert harness.reviver.ledger.pages_acquired == 2


class TestMigrationSuspension:
    def test_migration_failure_without_spares_suspends(self):
        harness = Harness()
        assert not harness.fail(10, context=FaultContext.MIGRATION)
        assert harness.reviver.acquisition_pending
        assert harness.reviver.links.vpa_of(10) is None

    def test_repeat_fault_on_queued_block_stays_suspended(self):
        harness = Harness()
        harness.fail(10, context=FaultContext.MIGRATION)
        assert not harness.reviver.handle_new_failure(
            10, FaultContext.MIGRATION, at_write=1)

    def test_victimized_acquisition_links_queued_block(self):
        harness = Harness()
        harness.fail(10, context=FaultContext.MIGRATION)
        harness.reviver.acquire_page(victim_pa=30, at_write=5,
                                     victimized=True)
        assert not harness.reviver.acquisition_pending
        assert harness.reviver.links.vpa_of(10) is not None
        event = harness.reporter.last_event()
        assert event.victimized

    def test_double_failure_raises(self):
        harness = Harness()
        harness.fail(10, victim_pa=10)
        with pytest.raises(ProtocolError):
            harness.reviver.handle_new_failure(10, FaultContext.SOFTWARE,
                                               victim_pa=10)

    def test_software_fault_requires_victim(self):
        harness = Harness()
        harness.failed.add(10)
        with pytest.raises(ProtocolError):
            harness.reviver.handle_new_failure(10, FaultContext.SOFTWARE)


class TestLinking:
    def test_loop_formed_when_mapper_is_spare(self):
        """A failed block whose owning PA is an unlinked spare retires as
        a PA-DA loop without consuming a healthy shadow."""
        harness = Harness()
        harness.fail(10, victim_pa=10)
        # Find a spare PA and fail the block it maps onto.
        spare = harness.reviver.spares.peek_all()[0]
        target = harness.mapping[spare]
        spares_before = harness.reviver.spares.available
        harness.fail(target, context=FaultContext.MIGRATION)
        assert harness.reviver.links.vpa_of(target) == spare
        assert harness.reviver.resolve(target).is_loop
        # Exactly the specific spare was consumed.
        assert harness.reviver.spares.available == spares_before - 1

    def test_resolution_after_mapping_change(self):
        """Moving the shadow via the mapping updates resolution for free."""
        harness = Harness()
        harness.fail(10, victim_pa=10)
        vpa = harness.reviver.links.vpa_of(10)
        old_shadow = harness.mapping[vpa]
        harness.mapping[vpa] = 50  # wear-leveling moved the shadow
        assert harness.reviver.resolve(10).final_da == 50
        assert old_shadow != 50

    def test_on_mapping_changed_reduces_new_chain(self):
        """A migration landing a linked VPA on a failed block triggers the
        Figure 3 switch."""
        harness = Harness()
        harness.fail(10, victim_pa=10)
        harness.fail(20, victim_pa=20)
        vpa10 = harness.reviver.links.vpa_of(10)
        # The wear-leveler remaps vpa10 onto failed block 20.
        harness.mapping[vpa10] = 20
        harness.reviver.on_mapping_changed([vpa10])
        resolution = harness.reviver.resolve(10)
        assert resolution.hops == 1
        assert not resolution.is_loop
        assert not harness.reviver.is_reserved_pa(0)

    def test_is_reserved_pa(self):
        harness = Harness()
        harness.fail(10, victim_pa=10)
        vpa = harness.reviver.links.vpa_of(10)
        spare = harness.reviver.spares.peek_all()[0]
        pointer_pa = harness.reviver.ledger.pages[0].pointer_pas[0]
        assert harness.reviver.is_reserved_pa(vpa)
        assert harness.reviver.is_reserved_pa(spare)
        assert not harness.reviver.is_reserved_pa(pointer_pa) or \
            harness.reviver.ledger.is_shadow_slot(pointer_pa) is False

    def test_stats_keys(self):
        harness = Harness()
        harness.fail(10, victim_pa=10)
        stats = harness.reviver.stats()
        assert stats["pages_acquired"] == 1
        assert stats["linked_blocks"] == 1
        assert stats["os_reports"] == 1
