"""Unit tests for Start-Gap wear leveling."""

import numpy as np
import pytest

from repro.config import StartGapConfig
from repro.errors import ConfigurationError
from repro.wl import NullPort, StartGap
from repro.wl.randomizer import IdentityRandomizer


def make_sg(device: int = 65, psi: int = 10, identity: bool = False):
    randomizer = IdentityRandomizer(device - 1) if identity else None
    return StartGap(device, config=StartGapConfig(psi=psi),
                    randomizer=randomizer)


class TestMapping:
    def test_initial_identity_with_identity_randomizer(self):
        sg = make_sg(identity=True)
        for pa in range(sg.logical_blocks):
            assert sg.map(pa) == pa

    def test_gap_starts_at_top(self):
        sg = make_sg()
        assert sg.gap == sg.logical_blocks
        assert sg.inverse(sg.gap) is None

    def test_bijection_initial(self):
        make_sg().check_bijection()

    def test_bijection_preserved_across_moves(self):
        sg = make_sg(psi=1)
        port = NullPort()
        for step in range(3 * (sg.logical_blocks + 1)):
            sg.tick(port)
            if step % 17 == 0:
                sg.check_bijection()
        sg.check_bijection()

    def test_map_many_matches_scalar(self):
        sg = make_sg()
        port = NullPort()
        for _ in range(137):
            sg.tick(port)
        pas = np.arange(sg.logical_blocks)
        assert (sg.map_many(pas)
                == np.array([sg.map(int(p)) for p in pas])).all()

    def test_logical_is_device_minus_one(self):
        assert make_sg(65).logical_blocks == 64


class TestGapMovement:
    def test_one_move_per_psi_writes(self):
        sg = make_sg(psi=10)
        port = NullPort()
        for _ in range(100):
            sg.tick(port)
        assert sg.gap_moves == 10

    def test_move_shifts_gap_down(self):
        sg = make_sg(psi=1, identity=True)
        top = sg.gap
        sg.tick(NullPort())
        assert sg.gap == top - 1

    def test_wrap_increments_start(self):
        sg = make_sg(device=9, psi=1, identity=True)
        port = NullPort()
        for _ in range(sg.logical_blocks + 1):
            sg.tick(port)
        assert sg.gap == sg.logical_blocks
        assert sg.start == 1

    def test_full_rotation_returns_identity(self):
        """After L*(L+1) moves the mapping returns to the identity."""
        sg = make_sg(device=9, psi=1, identity=True)
        port = NullPort()
        logical = sg.logical_blocks
        for _ in range(logical * (logical + 1)):
            sg.tick(port)
        assert sg.start == 0
        assert all(sg.map(pa) == pa for pa in range(logical))

    def test_each_move_changes_exactly_one_pa(self):
        sg = make_sg(psi=1)
        port = NullPort()
        before = {pa: sg.map(pa) for pa in range(sg.logical_blocks)}
        changed = sg.tick(port)
        after = {pa: sg.map(pa) for pa in range(sg.logical_blocks)}
        moved = [pa for pa in before if before[pa] != after[pa]]
        assert moved == changed
        assert len(moved) == 1

    def test_migration_reads_source_and_writes_moved_pa(self):
        sg = make_sg(psi=1)
        port = NullPort()
        changed = sg.tick(port)
        assert len(port.reads) == 1
        assert len(port.writes) == 1
        assert port.writes[0][0] == changed[0]


class TestLifecycle:
    def test_freeze_stops_moves_and_mapping(self):
        sg = make_sg(psi=1)
        port = NullPort()
        sg.tick(port)
        sg.freeze()
        gap, start = sg.gap, sg.start
        for _ in range(50):
            assert sg.tick(port) == []
        assert (sg.gap, sg.start) == (gap, start)

    def test_deferred_when_port_busy(self):
        class BusyPort(NullPort):
            def can_start_migration(self):
                return False

        sg = make_sg(psi=1)
        port = BusyPort()
        for _ in range(5):
            sg.tick(port)
        assert sg.gap_moves == 0
        assert sg._pending_moves == 5
        # Once the port frees up, the debt is repaid in one tick.
        sg.tick(NullPort())  # note: fresh port that allows migration
        assert sg.gap_moves >= 5

    def test_schedule_due(self):
        sg = make_sg(psi=10)
        assert sg.schedule_due(100) == 10
        sg.bulk_migrations(4)
        assert sg.schedule_due(100) == 6

    def test_bulk_matches_tick_state(self):
        a = make_sg(psi=1)
        b = make_sg(psi=1)
        rows = a.bulk_migrations(77)
        port = NullPort()
        for _ in range(77):
            b.tick(port)
        assert (a.gap, a.start, a.gap_moves) == (b.gap, b.start, b.gap_moves)
        assert rows.shape == (77, 2)

    def test_rejects_tiny_device(self):
        with pytest.raises(ConfigurationError):
            StartGap(1)

    def test_rejects_mismatched_randomizer(self):
        with pytest.raises(ConfigurationError):
            StartGap(65, randomizer=IdentityRandomizer(10))

    def test_describe(self):
        assert "StartGap" in make_sg().describe()
