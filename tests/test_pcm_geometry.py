"""Unit tests for address geometry."""

import numpy as np
import pytest

from repro.errors import AddressError
from repro.pcm import AddressGeometry


@pytest.fixture
def geometry() -> AddressGeometry:
    return AddressGeometry(num_blocks=256, block_bytes=64, page_bytes=512)


class TestConstruction:
    def test_derived_quantities(self, geometry):
        assert geometry.blocks_per_page == 8
        assert geometry.num_pages == 32

    def test_rejects_partial_pages(self):
        with pytest.raises(AddressError):
            AddressGeometry(num_blocks=100, block_bytes=64, page_bytes=512)

    def test_rejects_empty(self):
        with pytest.raises(AddressError):
            AddressGeometry(num_blocks=0)


class TestScalarConversions:
    def test_page_of(self, geometry):
        assert geometry.page_of(0) == 0
        assert geometry.page_of(7) == 0
        assert geometry.page_of(8) == 1
        assert geometry.page_of(255) == 31

    def test_offset_in_page(self, geometry):
        assert geometry.offset_in_page(13) == 5

    def test_split_join_round_trip(self, geometry):
        for pa in (0, 1, 8, 100, 255):
            page, offset = geometry.split(pa)
            assert geometry.join(page, offset) == pa

    def test_page_range(self, geometry):
        assert geometry.page_range(2) == (16, 24)

    def test_pas_of_page(self, geometry):
        assert list(geometry.pas_of_page(3)) == list(range(24, 32))

    def test_bounds_checks(self, geometry):
        with pytest.raises(AddressError):
            geometry.check_block(256)
        with pytest.raises(AddressError):
            geometry.check_block(-1)
        with pytest.raises(AddressError):
            geometry.check_page(32)
        with pytest.raises(AddressError):
            geometry.join(0, 8)


class TestVectorConversions:
    def test_pages_of_matches_scalar(self, geometry):
        pas = np.arange(256)
        pages = geometry.pages_of(pas)
        assert all(pages[pa] == geometry.page_of(int(pa)) for pa in pas)

    def test_offsets_of_matches_scalar(self, geometry):
        pas = np.arange(256)
        offsets = geometry.offsets_of(pas)
        assert all(offsets[pa] == geometry.offset_in_page(int(pa))
                   for pa in pas)
