"""Unit tests for the deterministic RNG plumbing."""

import numpy as np

from repro.rng import DEFAULT_SEED, derive_rng, make_rng, optional_int_seed, spawn_seed


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=8)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_same_seed_same_stream(self):
        assert (make_rng(5).random(16) == make_rng(5).random(16)).all()

    def test_different_seeds_differ(self):
        assert not (make_rng(5).random(16) == make_rng(6).random(16)).all()

    def test_passes_generator_through(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator


class TestDeriveRng:
    def test_streams_are_reproducible(self):
        a = derive_rng(7, "trace").random(8)
        b = derive_rng(7, "trace").random(8)
        assert (a == b).all()

    def test_streams_are_independent(self):
        a = derive_rng(7, "trace").random(8)
        b = derive_rng(7, "endurance").random(8)
        assert not (a == b).all()

    def test_seed_changes_stream(self):
        a = derive_rng(7, "trace").random(8)
        b = derive_rng(8, "trace").random(8)
        assert not (a == b).all()

    def test_generator_input_spawns_child(self):
        parent = np.random.default_rng(3)
        child = derive_rng(parent, "whatever")
        assert isinstance(child, np.random.Generator)
        assert child is not parent


class TestHelpers:
    def test_spawn_seed_in_range(self):
        rng = make_rng(1)
        for _ in range(32):
            assert 0 <= spawn_seed(rng) < 2 ** 63

    def test_optional_int_seed(self):
        assert optional_int_seed(None) == DEFAULT_SEED
        assert optional_int_seed(9) == 9
        assert optional_int_seed(np.random.default_rng(0)) is None
