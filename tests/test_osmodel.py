"""Unit tests for the OS model: page pool, retirement, fault reporting."""

import numpy as np
import pytest

from repro.errors import AddressError, CapacityExhaustedError, ProtocolError
from repro.osmodel import FaultReporter, PagePool, PageStatus


def make_pool(blocks: int = 256, bpp: int = 8, utilization: float = 1.0,
              seed: int = 5) -> PagePool:
    return PagePool(blocks, blocks_per_page=bpp, utilization=utilization,
                    seed=seed)


class TestTranslation:
    def test_identity_at_boot(self):
        pool = make_pool()
        for vblock in (0, 7, 8, 100, 255):
            assert pool.translate(vblock) == vblock

    def test_translate_many_matches_scalar(self):
        pool = make_pool()
        vblocks = np.arange(pool.virtual_blocks)
        vector = pool.translate_many(vblocks)
        assert all(vector[v] == pool.translate(int(v)) for v in vblocks)

    def test_out_of_range_rejected(self):
        pool = make_pool(utilization=0.5)
        with pytest.raises(AddressError):
            pool.translate(pool.virtual_blocks)

    def test_utilization_shrinks_virtual_space(self):
        pool = make_pool(utilization=0.5)
        assert pool.num_virtual_pages == 16
        assert pool.virtual_blocks == 128

    def test_partial_tail_excluded(self):
        pool = PagePool(127, blocks_per_page=8)
        assert pool.num_pages == 15
        assert not pool.pa_in_software_space(120)
        assert pool.pa_in_software_space(119)


class TestRetirement:
    def test_retire_returns_page_pas(self):
        pool = make_pool()
        pas = pool.retire(3)
        assert pas == list(range(24, 32))
        assert not pool.is_usable(3)
        assert pool.retired_pages == 1

    def test_retire_twice_rejected(self):
        pool = make_pool()
        pool.retire(3)
        with pytest.raises(AddressError):
            pool.retire(3)

    def test_vpage_moves_to_free_frame_first(self):
        pool = make_pool(utilization=0.5, seed=5)
        pool.retire(3)
        (vpage, old_phys, new_phys, shared) = pool.last_moves[0]
        assert vpage == 3 and old_phys == 3
        assert new_phys >= 16  # a free frame beyond the working set
        assert not shared
        assert pool.translate(24) == new_phys * 8

    def test_sharing_when_no_free_frames(self):
        pool = make_pool(utilization=1.0, seed=5)
        pool.retire(3)
        (vpage, _, new_phys, shared) = pool.last_moves[0]
        assert shared
        assert vpage in pool.pages[new_phys].virtual_pages

    def test_usable_fraction_decreases(self):
        pool = make_pool()
        assert pool.usable_fraction() == 1.0
        pool.retire(0)
        assert pool.usable_fraction() == pytest.approx(31 / 32)

    def test_exhaustion_raises(self):
        pool = make_pool(blocks=16, bpp=8)  # 2 pages
        pool.retire(0)
        with pytest.raises(CapacityExhaustedError):
            pool.retire(1)

    def test_relocate_keeps_page_usable(self):
        pool = make_pool(utilization=0.5, seed=5)
        moves = pool.relocate(3)
        assert pool.is_usable(3)
        assert len(moves) == 1
        assert pool.pages[3].virtual_pages == []

    def test_relocate_retired_rejected(self):
        pool = make_pool()
        pool.retire(3)
        with pytest.raises(AddressError):
            pool.relocate(3)


class TestFaultReporter:
    def test_report_retires_and_logs(self):
        pool = make_pool()
        reporter = FaultReporter(pool)
        pas = reporter.report(pa=25, at_write=10)
        assert pas == list(range(24, 32))
        assert pool.pages[3].status is PageStatus.RETIRED
        event = reporter.last_event()
        assert event.page_id == 3
        assert event.pa == 25
        assert event.at_write == 10
        assert not event.victimized

    def test_victimized_flag_recorded(self):
        pool = make_pool()
        reporter = FaultReporter(pool)
        reporter.report(pa=25, at_write=10, victimized=True)
        assert reporter.victimized_count == 1
        assert reporter.report_count == 1

    def test_empty_log(self):
        reporter = FaultReporter(make_pool())
        assert reporter.last_event() is None
        assert reporter.report_count == 0

    def test_report_on_already_retired_page_is_protocol_error(self):
        pool = make_pool()
        reporter = FaultReporter(pool)
        reporter.report(pa=25, at_write=10)
        # The OS never accesses a retired page again; a second report
        # against it is a device-side bug, not an OS event.
        with pytest.raises(ProtocolError):
            reporter.report(pa=26, at_write=11)
        assert reporter.report_count == 1

    def test_report_out_of_range_pa_is_address_error(self):
        pool = make_pool(blocks=256, utilization=0.5)
        reporter = FaultReporter(pool)
        for pa in (-1, pool.usable_blocks + pool.retired_blocks + 10_000):
            with pytest.raises(AddressError):
                reporter.report(pa=pa, at_write=10)
        assert reporter.report_count == 0

    def test_failed_report_leaves_pool_and_log_untouched(self):
        pool = make_pool()
        reporter = FaultReporter(pool)
        reporter.report(pa=25, at_write=10, victimized=True)
        usable_before = pool.usable_blocks
        with pytest.raises(ProtocolError):
            reporter.report(pa=25, at_write=11, victimized=True)
        with pytest.raises(AddressError):
            reporter.report(pa=100_000, at_write=12, victimized=True)
        # No phantom retirement, no phantom event: victimization accounting
        # only counts reports the OS actually acted on.
        assert pool.usable_blocks == usable_before
        assert reporter.report_count == 1
        assert reporter.victimized_count == 1
        assert reporter.last_event().at_write == 10

    def test_record_write_statistics(self):
        pool = make_pool()
        pool.record_write(25)
        pool.record_write(26)
        assert pool.pages[3].writes == 2
