"""Unit tests for WL-Reviver's components: spare pool, page ledger,
link table, and retired-page bitmap."""

import pytest

from repro.config import ReviverConfig
from repro.errors import AddressError, CapacityExhaustedError, ProtocolError
from repro.reviver import LinkTable, PageLedger, RetiredPageBitmap, SparePool


class TestSparePool:
    def test_fifo_order(self):
        pool = SparePool()
        pool.add([10, 11, 12])
        assert pool.take() == 10
        assert pool.take() == 11
        assert pool.available == 1

    def test_take_specific(self):
        pool = SparePool()
        pool.add([10, 11, 12])
        assert pool.take_specific(11) == 11
        assert pool.take() == 10
        assert pool.take() == 12

    def test_empty_raises(self):
        with pytest.raises(CapacityExhaustedError):
            SparePool().take()

    def test_take_specific_missing_raises(self):
        pool = SparePool()
        pool.add([10])
        with pytest.raises(CapacityExhaustedError):
            pool.take_specific(99)

    def test_membership_and_counters(self):
        pool = SparePool()
        pool.add([5, 6])
        assert 5 in pool and 7 not in pool
        pool.take()
        assert pool.total_acquired == 2
        assert pool.total_consumed == 1
        assert pool.peek_all() == [6]


def make_ledger(bpp: int = 8) -> PageLedger:
    return PageLedger(ReviverConfig(), blocks_per_page=bpp, block_bytes=64)


class TestPageLedger:
    def test_paper_split_64(self):
        ledger = make_ledger(bpp=64)
        page = ledger.claim(0, list(range(64)))
        # Figure 4: 60 shadow slots, 4 pointer PAs.
        assert len(page.shadow_pas) == 60
        assert len(page.pointer_pas) == 4

    def test_small_page_split(self):
        ledger = make_ledger(bpp=8)
        page = ledger.claim(0, list(range(8)))
        assert page.shadow_pas == tuple(range(7))
        assert page.pointer_pas == (7,)

    def test_pointer_home_assignment(self):
        ledger = make_ledger(bpp=64)
        page = ledger.claim(0, list(range(64)))
        # 16 pointers per block: slots 0-15 live in the first pointer PA.
        assert ledger.pointer_home(page.shadow_pas[0]) == page.pointer_pas[0]
        assert ledger.pointer_home(page.shadow_pas[15]) == page.pointer_pas[0]
        assert ledger.pointer_home(page.shadow_pas[16]) == page.pointer_pas[1]
        assert ledger.pointer_home(page.shadow_pas[59]) == page.pointer_pas[3]

    def test_claim_validates_size(self):
        with pytest.raises(ProtocolError):
            make_ledger(bpp=8).claim(0, list(range(5)))

    def test_unknown_vpa_rejected(self):
        ledger = make_ledger()
        with pytest.raises(ProtocolError):
            ledger.pointer_home(1234)

    def test_bookkeeping(self):
        ledger = make_ledger(bpp=8)
        ledger.claim(2, list(range(16, 24)))
        assert ledger.pages_acquired == 1
        assert ledger.shadow_slots_per_page == 7
        assert ledger.is_shadow_slot(16)
        assert not ledger.is_shadow_slot(23)  # pointer PA, not a slot
        assert ledger.owner_page(16) == 2
        assert ledger.owner_page(99) is None


class TestLinkTable:
    def make(self):
        ledger = make_ledger(bpp=8)
        ledger.claim(0, list(range(8)))
        return LinkTable(ledger)

    def test_link_both_directions(self):
        links = self.make()
        links.link(42, 3)
        assert links.vpa_of(42) == 3
        assert links.failed_of(3) == 42
        assert links.is_linked_vpa(3)
        assert len(links) == 1

    def test_link_emits_metadata_writes(self):
        links = self.make()
        links.link(42, 3)
        writes = links.drain_writes()
        kinds = sorted(w.kind for w in writes)
        assert kinds == ["inverse", "pointer"]
        pointer = next(w for w in writes if w.kind == "pointer")
        assert pointer.location == 42
        inverse = next(w for w in writes if w.kind == "inverse")
        assert inverse.location == 7  # the page's pointer PA

    def test_double_link_rejected(self):
        links = self.make()
        links.link(42, 3)
        with pytest.raises(ProtocolError):
            links.link(42, 4)
        with pytest.raises(ProtocolError):
            links.link(43, 3)

    def test_switch_exchanges_vpas(self):
        links = self.make()
        links.link(42, 3)
        links.link(43, 4)
        links.drain_writes()
        links.switch(42, 43)
        assert links.vpa_of(42) == 4
        assert links.vpa_of(43) == 3
        assert links.failed_of(3) == 43
        assert links.failed_of(4) == 42
        # A switch rewrites both pointers and both inverse pointers.
        writes = links.drain_writes()
        assert sorted(w.kind for w in writes) == ["inverse", "inverse",
                                                  "pointer", "pointer"]

    def test_switch_requires_links(self):
        links = self.make()
        links.link(42, 3)
        with pytest.raises(ProtocolError):
            links.switch(42, 99)

    def test_linked_blocks_sorted(self):
        links = self.make()
        links.link(50, 3)
        links.link(42, 4)
        assert links.linked_blocks() == [42, 50]


class TestRetiredPageBitmap:
    def test_mark_and_query(self):
        bitmap = RetiredPageBitmap(16, replicas=2)
        bitmap.mark_retired(3)
        assert bitmap.is_retired(3)
        assert not bitmap.is_retired(4)
        assert bitmap.retired_count == 1
        assert bitmap.retired_pages() == [3]

    def test_replica_write_accounting(self):
        bitmap = RetiredPageBitmap(16, replicas=3)
        bitmap.mark_retired(0)
        bitmap.mark_retired(1)
        assert bitmap.metadata_writes == 6

    def test_double_mark_rejected(self):
        bitmap = RetiredPageBitmap(16)
        bitmap.mark_retired(3)
        with pytest.raises(ProtocolError):
            bitmap.mark_retired(3)

    def test_bounds(self):
        bitmap = RetiredPageBitmap(16)
        with pytest.raises(AddressError):
            bitmap.mark_retired(16)
        with pytest.raises(AddressError):
            bitmap.is_retired(-1)

    def test_reboot_round_trip(self):
        bitmap = RetiredPageBitmap(100, replicas=2)
        for page in (0, 13, 64, 99):
            bitmap.mark_retired(page)
        restored = RetiredPageBitmap.from_bytes(bitmap.to_bytes(), 100)
        assert restored.retired_pages() == [0, 13, 64, 99]

    def test_truncated_serialization_rejected(self):
        with pytest.raises(AddressError):
            RetiredPageBitmap.from_bytes(b"\x00", 100)

    def test_storage_cost(self):
        bitmap = RetiredPageBitmap(100, replicas=2)
        assert bitmap.storage_bytes() == 2 * 13
