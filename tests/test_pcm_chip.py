"""Unit tests for the PCM chip simulator."""

import numpy as np
import pytest

from repro.errors import AddressError, WriteFault
from repro.pcm import BlockState
from repro.pcm.chip import EMPTY_TAG

from .conftest import make_chip


class TestBasicWrites:
    def test_write_stores_tag_and_wears(self, small_chip):
        small_chip.write(3, tag=42)
        assert small_chip.read(3) == 42
        assert small_chip.wear_of(3) == 1

    def test_write_without_tag_keeps_content(self, small_chip):
        small_chip.write(3, tag=42)
        small_chip.write(3)
        assert small_chip.read(3) == 42
        assert small_chip.wear_of(3) == 2

    def test_unwritten_reads_empty(self, small_chip):
        assert small_chip.read(5) == EMPTY_TAG

    def test_total_device_writes(self, small_chip):
        for _ in range(5):
            small_chip.write(1)
        small_chip.write_metadata(2)
        assert small_chip.total_device_writes == 6

    def test_bounds_check(self, small_chip):
        with pytest.raises(AddressError):
            small_chip.write(128)


class TestFailure:
    def test_block_fails_at_threshold(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        da = 0
        threshold = chip.ecc.threshold(da)
        for _ in range(threshold - 1):
            chip.write(da)
        with pytest.raises(WriteFault):
            chip.write(da)
        assert chip.is_failed(da)

    def test_failed_write_clears_content(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        da = 0
        chip.write(da, tag=9)
        with pytest.raises(WriteFault):
            for _ in range(chip.ecc.threshold(da) + 1):
                chip.write(da, tag=9)
        assert chip.read(da) == EMPTY_TAG

    def test_write_to_failed_block_faults(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        with pytest.raises(WriteFault):
            for _ in range(10_000):
                chip.write(0)
        with pytest.raises(WriteFault):
            chip.write(0)

    def test_metadata_write_to_failed_block_allowed(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        with pytest.raises(WriteFault):
            for _ in range(10_000):
                chip.write(0)
        chip.write_metadata(0)  # pointer storage in surviving cells

    def test_failed_fraction(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        assert chip.failed_fraction() == 0.0
        with pytest.raises(WriteFault):
            for _ in range(10_000):
                chip.write(0)
        assert chip.failed_fraction() == pytest.approx(1 / 64)


class TestBatchedWrites:
    def test_batch_matches_scalar_wear(self):
        scalar = make_chip(num_blocks=64, mean=10_000, seed=3)
        batched = make_chip(num_blocks=64, mean=10_000, seed=3)
        das = np.array([1, 2, 3, 1])
        counts = np.array([4, 2, 1, 6])
        for da, count in zip(das, counts):
            for _ in range(count):
                scalar.write(int(da))
        batched.write_many(das, counts)
        assert (scalar.wear == batched.wear).all()

    def test_batch_detects_failures(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        threshold = chip.ecc.threshold(5)
        newly = chip.write_many(np.array([5]), np.array([threshold + 10]))
        assert newly.tolist() == [5]
        assert chip.is_failed(5)

    def test_batch_ignores_already_failed(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        chip.write_many(np.array([5]), np.array([100_000]))
        newly = chip.write_many(np.array([5]), np.array([10]))
        assert newly.size == 0

    def test_empty_batch(self, small_chip):
        newly = small_chip.write_many(np.empty(0, dtype=np.int64),
                                      np.empty(0, dtype=np.int64))
        assert newly.size == 0

    def test_shape_mismatch_rejected(self, small_chip):
        with pytest.raises(AddressError):
            small_chip.write_many(np.array([1, 2]), np.array([1]))


class TestViewsAndStats:
    def test_view_reports_state(self, small_chip):
        small_chip.write(7)
        view = small_chip.view(7)
        assert view.da == 7
        assert view.state is BlockState.HEALTHY
        assert view.wear == 1
        assert view.remaining == view.threshold - 1

    def test_wear_cov_uniform_is_zero(self, small_chip):
        for da in range(small_chip.num_blocks):
            small_chip.write(da)
        assert small_chip.wear_cov() == pytest.approx(0.0)

    def test_wear_cov_skewed_positive(self, small_chip):
        for _ in range(50):
            small_chip.write(0)
        assert small_chip.wear_cov() > 1.0
