"""The telemetry subsystem: metrics, tracing, sessions, and the CLI.

Three layers of assurance:

* unit tests over every primitive (counters, gauges, histograms, the
  registry's enabled flag and type guard, the trace writer's closed
  vocabulary and sequence discipline);
* Hypothesis properties — histogram cumulative monotonicity under any
  observation sequence, snapshot-merge associativity/commutativity (the
  worker-order-independence guarantee), and trace round-trip identity;
* end-to-end reconciliation: an instrumented seeded run's event counts
  must match the controller's own ground-truth counters exactly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.telemetry import (TelemetrySession, TraceWriter, attach_controller,
                             attach_exact, attach_fast, attach_ftl, census,
                             diff_traces, merge_snapshots, read_trace,
                             run_meta, timed_call)
from repro.telemetry.metrics import (DEFAULT_BUCKETS, NULL_COUNTER,
                                     NULL_GAUGE, NULL_HISTOGRAM, Registry,
                                     SLO_QUANTILES, gauge_payload,
                                     gauge_value, histogram_quantile,
                                     quantile_label, snapshot_quantiles)
from repro.telemetry.trace import (EVENT_KINDS, PROFILE_KIND, dumps, loads,
                                   profile_of)

# ---------------------------------------------------------------------------
# metric primitives


class TestCounter:
    def test_increments_accumulate(self):
        counter = Registry().counter("writes")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_is_rejected(self):
        counter = Registry().counter("writes")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)

    def test_registry_returns_same_instance(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")


class TestGauge:
    def test_last_write_wins(self):
        gauge = Registry().gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1


class TestGaugeModes:
    """Per-gauge merge policies (max / min / last)."""

    def test_default_mode_is_max_and_snapshots_bare(self):
        # Regression pin: a gauge without an explicit mode behaves and
        # serializes exactly as before the modes existed.
        registry = Registry()
        registry.gauge("peak").set(7)
        assert registry.gauge("peak").mode == "max"
        assert registry.snapshot()["gauges"] == {"peak": 7}

    def test_max_merge_default_is_unchanged(self):
        a = {"gauges": {"peak": 3}}
        b = {"gauges": {"peak": 9}}
        merged = merge_snapshots(a, b)
        assert merged["gauges"] == {"peak": 9}

    def test_min_mode_keeps_the_low_water_mark(self):
        registry = Registry()
        registry.gauge("headroom", mode="min").set(0.8)
        other = {"gauges": {"headroom": {"value": 0.3, "mode": "min"}}}
        registry.merge(other)
        registry.merge({"gauges": {"headroom": {"value": 0.5,
                                                "mode": "min"}}})
        assert registry.gauge("headroom").value == 0.3
        assert registry.snapshot()["gauges"]["headroom"] == {
            "value": 0.3, "mode": "min"}

    def test_last_mode_takes_the_incoming_value(self):
        a = {"gauges": {"risk": {"value": 0.2, "mode": "last"}}}
        b = {"gauges": {"risk": {"value": 0.7, "mode": "last"}}}
        merged = merge_snapshots(a, b)
        assert merged["gauges"]["risk"] == {"value": 0.7, "mode": "last"}

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown merge mode"):
            Registry().gauge("g", mode="median")

    def test_mode_mismatch_on_reuse_is_rejected(self):
        registry = Registry()
        registry.gauge("g", mode="min")
        registry.gauge("g")  # None = don't care
        with pytest.raises(ConfigurationError, match="merge mode"):
            registry.gauge("g", mode="max")

    def test_mode_mismatch_between_snapshots_is_rejected(self):
        a = {"gauges": {"g": {"value": 1, "mode": "min"}}}
        b = {"gauges": {"g": {"value": 2, "mode": "last"}}}
        with pytest.raises(ConfigurationError, match="differs between"):
            merge_snapshots(a, b)

    def test_bad_snapshot_mode_is_rejected(self):
        bad = {"gauges": {"g": {"value": 1, "mode": "median"}}}
        with pytest.raises(ConfigurationError, match="bad merge mode"):
            merge_snapshots(bad, {})

    def test_gauge_payload_and_value_accept_both_forms(self):
        assert gauge_payload("g", 4) == (4, "max")
        assert gauge_payload("g", {"value": 2.5, "mode": "min"}) \
            == (2.5, "min")
        assert gauge_value(4) == 4
        assert gauge_value({"value": 2.5, "mode": "last"}) == 2.5

    def test_session_set_gauge_forwards_the_mode(self):
        session = TelemetrySession()
        session.set_gauge("headroom", 0.4, mode="min")
        assert session.registry.gauge("headroom").mode == "min"


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = Registry().histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert hist.counts == [2, 1, 1]
        assert hist.total == 4
        assert hist.sum == pytest.approx(106.5)

    def test_bounds_must_be_strictly_increasing(self):
        registry = Registry()
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            registry.histogram("bad", bounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="at least one"):
            registry.histogram("empty", bounds=())

    def test_cumulative_ends_at_total(self):
        hist = Registry().histogram("lat", bounds=(1.0, 2.0, 3.0))
        for value in (0.5, 2.5, 9.0):
            hist.observe(value)
        assert hist.cumulative()[-1] == hist.total == 3


class TestRegistry:
    def test_cross_type_name_collision_is_rejected(self):
        registry = Registry()
        registry.counter("shared")
        with pytest.raises(ConfigurationError, match="different type"):
            registry.gauge("shared")
        with pytest.raises(ConfigurationError, match="different type"):
            registry.histogram("shared")

    def test_disabled_registry_hands_out_shared_null_metrics(self):
        registry = Registry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c") is NULL_HISTOGRAM
        registry.counter("a").inc(5)
        registry.gauge("b").set(5)
        registry.histogram("c").observe(5)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.total == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_folds_a_worker_snapshot(self):
        worker = Registry()
        worker.counter("cells").inc(3)
        worker.gauge("peak").set(7)
        worker.histogram("wall", bounds=(1.0,)).observe(0.5)
        parent = Registry()
        parent.counter("cells").inc(1)
        parent.gauge("peak").set(9)
        parent.merge(worker.snapshot())
        assert parent.counter("cells").value == 4
        assert parent.gauge("peak").value == 9
        assert parent.histogram("wall", bounds=(1.0,)).total == 1

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = Registry()
        a.histogram("wall", bounds=(1.0,)).observe(0.5)
        b = Registry()
        b.histogram("wall", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError, match="bounds differ"):
            a.merge(b.snapshot())

    def test_merge_into_disabled_registry_is_a_no_op(self):
        worker = Registry()
        worker.counter("cells").inc(3)
        disabled = Registry(enabled=False)
        disabled.merge(worker.snapshot())
        assert disabled.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_rejects_malformed_snapshots(self):
        registry = Registry()
        with pytest.raises(ConfigurationError, match="expected a number"):
            registry.merge({"counters": {"x": "three"}})
        with pytest.raises(ConfigurationError, match="not a mapping"):
            registry.merge({"histograms": {"h": [1, 2]}})
        with pytest.raises(ConfigurationError, match="expected a list"):
            registry.merge({"histograms": {"h": {"bounds": "oops"}}})
        # Same bounds but a truncated counts vector: the overflow bucket
        # is implicit, so len(counts) must be len(bounds) + 1.
        registry.histogram("wall", bounds=(1.0,))
        with pytest.raises(ConfigurationError, match="bucket count"):
            registry.merge({"histograms": {"wall": {
                "bounds": [1.0], "counts": [2], "total": 2, "sum": 0.5}}})


# ---------------------------------------------------------------------------
# hypothesis properties


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), max_size=200))
@settings(max_examples=100, deadline=None)
def test_histogram_cumulative_is_monotone(values):
    """Property: cumulative bucket counts never decrease and end at the
    total, for any observation sequence."""
    hist = Registry().histogram("h", bounds=DEFAULT_BUCKETS)
    for value in values:
        hist.observe(value)
    cumulative = hist.cumulative()
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == hist.total == len(values)


def _snapshot_strategy():
    names = st.sampled_from(["a", "b", "c"])
    counters = st.dictionaries(names, st.integers(min_value=0,
                                                  max_value=1000))
    gauges = st.dictionaries(names.map(lambda n: "g." + n),
                             st.integers(min_value=-50, max_value=50))
    histograms = st.dictionaries(
        names.map(lambda n: "h." + n),
        st.lists(st.integers(min_value=0, max_value=9), min_size=3,
                 max_size=3).map(lambda counts: {
                     "bounds": [1.0, 2.0], "counts": counts,
                     "total": sum(counts), "sum": float(sum(counts))}))
    return st.fixed_dictionaries({"counters": counters, "gauges": gauges,
                                  "histograms": histograms})


@given(a=_snapshot_strategy(), b=_snapshot_strategy(),
       c=_snapshot_strategy())
@settings(max_examples=100, deadline=None)
def test_snapshot_merge_is_associative_and_commutative(a, b, c):
    """Property: merge order never matters — workers can finish in any
    order and the aggregate is identical."""
    assert merge_snapshots(a, b) == merge_snapshots(b, a)
    assert merge_snapshots(merge_snapshots(a, b), c) == \
        merge_snapshots(a, merge_snapshots(b, c))


class TestMergeSnapshotsEdges:
    """Edge shapes the array layer feeds the merge (shards with no
    telemetry, disjoint metric sets, inconsistent kinds)."""

    def test_empty_snapshot_is_the_identity(self):
        snapshot = {"counters": {"x": 3}, "gauges": {"g": 5},
                    "histograms": {}}
        assert merge_snapshots(snapshot, {}) == {
            "counters": {"x": 3}, "gauges": {"g": 5}, "histograms": {}}
        assert merge_snapshots({}, snapshot) == \
            merge_snapshots(snapshot, {})
        assert merge_snapshots({}, {}) == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_disjoint_labels_union(self):
        a = {"counters": {"s0.writes": 10}, "gauges": {"s0.peak": 2}}
        b = {"counters": {"s1.writes": 7}, "gauges": {"s1.peak": 4}}
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"s0.writes": 10, "s1.writes": 7}
        assert merged["gauges"] == {"s0.peak": 2, "s1.peak": 4}

    def test_kind_mismatch_raises(self):
        # The same name as a counter in one shard and a gauge in another
        # means the instrumentation disagrees — never merge silently.
        a = {"counters": {"shared": 3}}
        b = {"gauges": {"shared": 1}}
        with pytest.raises(ConfigurationError, match="different type"):
            merge_snapshots(a, b)


_FIELD_VALUES = st.one_of(st.none(), st.booleans(),
                          st.integers(min_value=-2**31, max_value=2**31),
                          st.text(max_size=20))


@given(events=st.lists(
    st.tuples(st.sampled_from(sorted(EVENT_KINDS)),
              st.dictionaries(st.sampled_from(["da", "vpa", "page", "note"]),
                              _FIELD_VALUES, max_size=4)),
    max_size=50))
@settings(max_examples=100, deadline=None)
def test_trace_round_trips_identically(events):
    """Property: dumps -> loads -> dumps is the identity on any emitted
    trace, and read_trace validates it."""
    writer = TraceWriter(meta={"seed": 1})
    for kind, fields in events:
        writer.emit(kind, **fields)
    text = writer.getvalue()
    records = read_trace(text.splitlines())
    assert "\n".join(dumps(r) for r in records) + "\n" == text
    assert records == [loads(line) for line in text.splitlines()]
    assert diff_traces(records, read_trace(text.splitlines())) is None


# ---------------------------------------------------------------------------
# trace writer + reader


class TestTraceWriter:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="closed"):
            TraceWriter().emit("link-instal")  # typo'd kind

    def test_fields_cannot_shadow_kind_or_seq(self):
        writer = TraceWriter()
        with pytest.raises(ConfigurationError, match="shadow"):
            writer.emit("crash", seq=99)

    def test_sequence_numbers_are_contiguous_from_zero(self):
        writer = TraceWriter(meta={"seed": 1})
        writer.emit("crash", site="x")
        writer.emit("recover")
        records = read_trace(writer.getvalue().splitlines())
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert run_meta(records) == {"seed": 1}
        assert census(records) == {"crash": 1, "recover": 1, "run-meta": 1}

    def test_read_trace_rejects_broken_sequence(self):
        lines = [dumps({"seq": 0, "kind": "crash"}),
                 dumps({"seq": 2, "kind": "recover"})]
        with pytest.raises(ConfigurationError, match="sequence broken"):
            read_trace(lines)

    def test_read_trace_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown kind"):
            read_trace([dumps({"seq": 0, "kind": "nonsense"})])

    def test_diff_reports_first_divergence_and_length(self):
        a = [{"seq": 0, "kind": "crash"}]
        b = [{"seq": 0, "kind": "recover"}]
        assert "record 0 differs" in diff_traces(a, b)
        assert "lengths differ" in diff_traces(a, a + b)
        assert diff_traces(a, list(a)) is None

    def test_profile_record_is_parsed(self):
        writer = TraceWriter()
        writer.emit("crash")
        writer.append_profile({"verify": {"seconds": 1.5, "calls": 2}})
        records = read_trace(writer.getvalue().splitlines())
        assert records[-1]["kind"] == PROFILE_KIND
        assert profile_of(records) == {
            "verify": {"seconds": 1.5, "calls": 2}}

    def test_loads_rejects_a_non_object_line(self):
        with pytest.raises(ConfigurationError, match="not an object"):
            loads("[1, 2, 3]")

    def test_getvalue_requires_the_in_memory_sink(self, tmp_path):
        with open(tmp_path / "run.jsonl", "w") as sink:
            writer = TraceWriter(sink=sink)
            writer.emit("crash")
            with pytest.raises(ConfigurationError, match="in-memory"):
                writer.getvalue()

    def test_read_trace_skips_blank_lines(self):
        lines = ["", dumps({"seq": 0, "kind": "crash"}), "   ",
                 dumps({"seq": 1, "kind": "recover"}), ""]
        assert [r["kind"] for r in read_trace(lines)] == ["crash", "recover"]

    def test_run_meta_is_empty_unless_the_trace_leads_with_it(self):
        assert run_meta([]) == {}
        assert run_meta([{"seq": 0, "kind": "crash"},
                         {"seq": 1, "kind": "run-meta", "seed": 3}]) == {}


# ---------------------------------------------------------------------------
# the session facade


class TestSession:
    def test_emit_counts_and_traces_in_lockstep(self):
        session = TelemetrySession(writer=TraceWriter())
        session.emit("page-retire", page=3)
        session.emit("page-retire", page=4)
        assert session.event_count("page-retire") == 2
        assert session.writer.counts["page-retire"] == 2

    def test_emit_without_writer_still_counts(self):
        session = TelemetrySession()
        session.emit("crash")
        assert session.event_count("crash") == 1

    def test_phase_timing_accumulates_into_profile(self):
        session = TelemetrySession()
        with session.phase("verify"):
            pass
        session.add_phase_seconds("verify", 1.25)
        profile = session.profile()
        assert profile["verify"]["calls"] == 2
        assert profile["verify"]["seconds"] >= 1.25

    def test_append_profile_lands_in_the_trace(self):
        session = TelemetrySession(writer=TraceWriter())
        session.add_phase_seconds("verify", 0.5)
        session.append_profile()
        records = read_trace(session.writer.getvalue().splitlines())
        assert profile_of(records)["verify"]["calls"] == 1

    def test_timed_call_returns_value_and_timing(self):
        value, timing = timed_call(sum, [1, 2, 3])
        assert value == 6
        assert timing.wall >= 0.0 and timing.cpu >= 0.0

    def test_gauge_and_histogram_shorthands(self):
        session = TelemetrySession()
        session.set_gauge("grid.jobs", 4)
        session.observe("grid.cell_wall", 0.2, bounds=(1.0,))
        assert session.registry.gauge("grid.jobs").value == 4
        assert session.registry.histogram("grid.cell_wall",
                                          bounds=(1.0,)).total == 1

    def test_profile_ignores_counters_outside_the_phase_shape(self):
        session = TelemetrySession()
        session.count("phase.verify.seconds", 2)
        session.count("phase.verify.calls")
        session.count("phase.oddball")          # no .seconds/.calls suffix
        session.count("phase.x.bogus")          # unknown field
        assert session.profile() == {"verify": {"seconds": 2, "calls": 1}}


# ---------------------------------------------------------------------------
# end-to-end reconciliation against ground truth


def test_exact_run_events_reconcile_with_controller_counters():
    """An instrumented exact run's event census must agree exactly with
    the controller's own ground-truth counters."""
    from repro.faultinject.campaign import _exact_system, _schedule_horizon
    from repro.faultinject.hooks import ScheduleDriver
    from repro.faultinject.schedule import random_schedule

    engine = _exact_system(seed=5, num_blocks=96, mean=120.0)
    schedule = random_schedule(5, 96, _schedule_horizon(96, 120.0, 10_000))
    ScheduleDriver(schedule).attach_exact(engine)
    session = TelemetrySession(writer=TraceWriter(meta={"seed": 5}))
    attach_exact(session, engine)
    engine.run(max_writes=10_000)
    engine.verify_all()

    controller = engine.controller
    reviver = controller.reviver
    assert session.event_count("pointer-switch") == reviver.resolver.switches
    assert session.event_count("page-retire") == \
        controller.reporter.report_count
    assert session.event_count("crash") == controller.crashes_recovered
    assert session.event_count("recover") == controller.crashes_recovered
    assert session.event_count("read-retry") == \
        controller.transient_read_errors
    # Inverse rewrites mirror the "inverse" metadata writes one-for-one:
    # one per link, two per switch, one per recovery redo of that side.
    assert session.event_count("inverse-rewrite") >= \
        session.event_count("link-install") + \
        2 * session.event_count("pointer-switch")
    # Installs and restores cover every currently linked block.
    assert session.event_count("link-install") + \
        session.event_count("link-restore") >= len(reviver.links)
    # The trace validates and its census matches the registry.
    records = read_trace(session.writer.getvalue().splitlines())
    for kind, count in census(records).items():
        if kind in EVENT_KINDS:
            assert session.event_count(kind) == count
    # The run did something worth tracing.
    assert len(reviver.links) > 0
    assert controller.crashes_recovered > 0


def test_fast_run_links_reconcile_and_phases_are_profiled():
    """Instrumented FastEngine: link-install events equal the link dict,
    page-retire events equal OS reports, and every epoch phase shows up
    in the profile."""
    from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
    from repro.ecc import ECP
    from repro.sim.fast import FastConfig, FastEngine
    from repro.traces import hotspot_distribution
    from repro.wl import StartGap

    geometry = AddressGeometry(num_blocks=256, block_bytes=64, page_bytes=512)
    endurance = EnduranceModel(num_blocks=256, mean=150.0, cov=0.25,
                               max_order=8, seed=3)
    chip = PCMChip(geometry, ECP(endurance, 1))
    wl = StartGap(256)
    config = FastConfig(batch_writes=2_000, max_writes=60_000, seed=9)
    trace = hotspot_distribution(config.blocks_per_page * 3, 4.0, seed=4)
    engine = FastEngine(chip, wl, trace, config=config)
    session = TelemetrySession(writer=TraceWriter())
    attach_fast(session, engine)
    engine.run()

    assert session.event_count("link-install") == len(engine.links)
    assert session.event_count("page-retire") == \
        engine.reporter.report_count
    assert session.registry.counter("fast.writes").value == \
        engine.total_writes
    profile = session.profile()
    for phase in ("redirect-rebuild", "software-apply", "wear-leveling"):
        assert profile[phase]["calls"] > 0


def test_attach_controller_reaches_reviver_and_reporter():
    from .conftest import make_reviver_system

    controller, _, _, _ = make_reviver_system(num_blocks=64, mean=200.0)
    session = TelemetrySession()
    attach_controller(session, controller)
    assert controller.telem is session
    assert controller.reviver.telem is session
    assert controller.reviver.links.telem is session
    assert controller.reporter.telem is session


# ---------------------------------------------------------------------------
# the CLI


def _write_sample_trace(path):
    writer = TraceWriter(meta={"seed": 7, "engine": "exact"})
    writer.emit("link-install", da=3, vpa=40)
    writer.emit("crash", site="mid-migration")
    writer.emit("recover", crashes=1)
    writer.append_profile({"verify": {"seconds": 0.25, "calls": 1}})
    path.write_text(writer.getvalue())
    return path


def _hist_snap(bounds, counts, total=None, total_sum=0.0):
    return {"bounds": list(bounds), "counts": list(counts),
            "total": sum(counts) if total is None else total,
            "sum": total_sum}


class TestHistogramQuantiles:
    def test_interpolates_within_a_bucket(self):
        snap = _hist_snap((1.0, 2.0, 4.0), (1, 2, 1, 1))
        # rank 2.5 of 5 lands 1.5 observations into the [1, 2) bucket.
        assert histogram_quantile(snap, 0.5) == pytest.approx(1.75)

    def test_q0_is_the_lower_edge_and_q1_clamps_to_last_bound(self):
        snap = _hist_snap((1.0, 2.0, 4.0), (1, 2, 1, 1))
        assert histogram_quantile(snap, 0.0) == 0.0
        assert histogram_quantile(snap, 1.0) == 4.0

    def test_empty_buckets_are_skipped(self):
        snap = _hist_snap((1.0, 2.0, 4.0), (0, 2, 0, 0))
        assert histogram_quantile(snap, 0.5) == pytest.approx(1.5)

    def test_first_bucket_lower_edge_follows_a_negative_bound(self):
        assert histogram_quantile(
            _hist_snap((-2.0, 0.0), (2, 0, 0)), 0.5) == pytest.approx(-2.0)
        assert histogram_quantile(
            _hist_snap((2.0, 4.0), (2, 0, 0)), 0.5) == pytest.approx(1.0)

    def test_quantile_out_of_range_is_rejected(self):
        snap = _hist_snap((1.0,), (1, 0))
        for bad in (-0.1, 1.5):
            with pytest.raises(ConfigurationError, match="in \\[0, 1\\]"):
                histogram_quantile(snap, bad)

    def test_malformed_snapshots_are_rejected(self):
        with pytest.raises(ConfigurationError, match="bucket counts"):
            histogram_quantile(_hist_snap((1.0, 2.0), (1, 1)), 0.5)
        with pytest.raises(ConfigurationError, match="empty"):
            histogram_quantile(_hist_snap((1.0,), (0, 0)), 0.5)
        with pytest.raises(ConfigurationError, match="list under 'bounds'"):
            histogram_quantile({"bounds": 3, "counts": [1]}, 0.5)

    def test_histogram_method_matches_module_function(self):
        hist = Registry().histogram("lat", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 10.0):
            hist.observe(value)
        assert hist.quantile(0.5) == histogram_quantile(hist.snapshot(), 0.5)

    def test_quantile_label(self):
        assert [quantile_label(q) for q in SLO_QUANTILES] == \
            ["p50", "p95", "p99"]
        assert quantile_label(0.999) == "p99.9"

    def test_snapshot_quantiles_skips_empty_histograms(self):
        registry = Registry()
        registry.histogram("empty", bounds=(1.0,))
        registry.histogram("lat", bounds=(1.0, 2.0)).observe(0.5)
        table = snapshot_quantiles(registry.snapshot())
        assert set(table) == {"lat"}
        assert set(table["lat"]) == {"p50", "p95", "p99"}

    def test_snapshot_quantiles_rejects_non_mapping_histogram(self):
        with pytest.raises(ConfigurationError, match="not a mapping"):
            snapshot_quantiles({"histograms": {"x": 3}})

    def test_merged_snapshot_quantiles_cover_the_union(self):
        shard_a, shard_b = Registry(), Registry()
        for value in (0.5, 1.5):
            shard_a.histogram("lat", bounds=(1.0, 2.0, 4.0)).observe(value)
        for value in (1.5, 3.0, 10.0):
            shard_b.histogram("lat", bounds=(1.0, 2.0, 4.0)).observe(value)
        merged = merge_snapshots(shard_a.snapshot(), shard_b.snapshot())
        union = Registry()
        for value in (0.5, 1.5, 1.5, 3.0, 10.0):
            union.histogram("lat", bounds=(1.0, 2.0, 4.0)).observe(value)
        assert snapshot_quantiles(merged) == \
            snapshot_quantiles(union.snapshot())


class TestCli:
    def test_summarize_text(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        trace = _write_sample_trace(tmp_path / "run.jsonl")
        assert main(["summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "link-install" in out
        assert "seed: 7" in out
        assert "verify" in out  # the profile table

    def test_summarize_json(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        trace = _write_sample_trace(tmp_path / "run.jsonl")
        assert main(["summarize", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["census"]["crash"] == 1
        assert payload["meta"]["engine"] == "exact"
        assert payload["profile"]["verify"]["calls"] == 1

    def test_diff_identical_and_divergent(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        a = _write_sample_trace(tmp_path / "a.jsonl")
        b = _write_sample_trace(tmp_path / "b.jsonl")
        assert main(["diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out
        b.write_text(b.read_text().replace('"da":3', '"da":4'))
        assert main(["diff", str(a), str(b)]) == 1
        assert "record 1 differs" in capsys.readouterr().out

    def test_bad_trace_is_an_error_exit(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 0, "kind": "nonsense"}\n')
        assert main(["summarize", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_format_profile_tolerates_malformed_stats(self):
        from repro.telemetry.cli import _format_profile

        lines = _format_profile({
            "good": {"seconds": 1.0, "calls": 2},
            "not-a-dict": 7,
            "bad-fields": {"seconds": "fast", "calls": None},
        })
        assert any(line.startswith("good") for line in lines)
        assert not any("not-a-dict" in line for line in lines)
        assert any(line.startswith("bad-fields") for line in lines)
        assert lines[-1].startswith("total")

    def test_summarize_snapshot_text(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({
            "counters": {"serve.ok": 3}, "gauges": {"serve.depth": 2},
            "histograms": {"lat": _hist_snap((1.0, 2.0, 4.0), (1, 2, 1, 1))},
        }))
        assert main(["summarize", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "serve.ok" in out and "serve.depth" in out
        assert "p99" in out and "1.750" in out

    def test_summarize_unwraps_embedded_snapshot(self, tmp_path, capsys):
        """A serve-style result file carries its snapshot under a key."""
        from repro.telemetry.cli import main

        result = tmp_path / "slo.json"
        result.write_text(json.dumps({
            "config": {"seed": 7}, "report": {"throughput": 1.0},
            "snapshot": {
                "counters": {"serve.ok": 9},
                "histograms": {
                    "lat": _hist_snap((1.0, 2.0, 4.0), (1, 2, 1, 1))},
            },
        }))
        assert main(["summarize", str(result)]) == 0
        out = capsys.readouterr().out
        assert "serve.ok" in out and "p99" in out

    def test_non_dict_embedded_snapshot_falls_through(self, tmp_path,
                                                      capsys):
        from repro.telemetry.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"snapshot": [1, 2]}')
        assert main(["summarize", str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_summarize_snapshot_json(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({
            "histograms": {"lat": _hist_snap((1.0, 2.0, 4.0), (1, 2, 1, 1))},
        }))
        assert main(["summarize", str(snap), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quantiles"]["lat"]["p50"] == pytest.approx(1.75)
        assert payload["snapshot"]["histograms"]["lat"]["total"] == 5

    def test_summarize_snapshot_without_histograms(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"counters": {"serve.ok": 3}}))
        assert main(["summarize", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "serve.ok" in out and "histograms:" not in out

    def test_non_snapshot_json_falls_through_to_trace_reader(self, tmp_path,
                                                             capsys):
        from repro.telemetry.cli import main

        # A JSON object with foreign keys, a non-dict section value, and a
        # non-object document are all *not* snapshots; they hit the trace
        # reader, which rejects them as malformed records (exit 2).
        for text in ('{"foo": 1}', '{"counters": 5}', '[1, 2]', "{}"):
            bad = tmp_path / "bad.json"
            bad.write_text(text)
            assert main(["summarize", str(bad)]) == 2
            assert "error:" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        trace = _write_sample_trace(tmp_path / "run.jsonl")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry", "summarize",
             str(trace)],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert "census" in proc.stdout

    def test_module_entry_point_in_process(self, tmp_path, capsys,
                                           monkeypatch):
        import runpy
        import sys

        trace = _write_sample_trace(tmp_path / "run.jsonl")
        monkeypatch.setattr(
            sys, "argv", ["repro.telemetry", "summarize", str(trace)])
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_module("repro.telemetry", run_name="__main__")
        assert excinfo.value.code == 0
        assert "census" in capsys.readouterr().out


def test_attach_ftl_routes_wa_accounting_through_the_session():
    import numpy as np

    from repro.workloads import FTLConfig, PageMappingFTL

    ftl = PageMappingFTL(FTLConfig(logical_pages=96, physical_blocks=8,
                                   pages_per_block=32))
    session = TelemetrySession()
    assert attach_ftl(session, ftl) is session
    assert ftl.telem is session
    addresses = np.random.default_rng(7).integers(0, 96, size=2048)
    ftl.replay(addresses, epoch_writes=512)
    counters = session.registry.snapshot()["counters"]
    assert counters["wa.host_writes"] == 2048
    assert counters["wa.gc_writes"] == ftl.gc_writes
    assert counters["wa.erases"] == ftl.erases
    gauges = session.registry.snapshot()["gauges"]
    assert gauges["wa.ratio"] == pytest.approx(ftl.wa_ratio())
    histogram = session.registry.snapshot()["histograms"]["wa.epoch_ratio"]
    assert sum(histogram["counts"]) == len(ftl.epoch_series) == 4


def test_detached_ftl_pays_nothing():
    import numpy as np

    from repro.workloads import FTLConfig, PageMappingFTL

    ftl = PageMappingFTL(FTLConfig(logical_pages=96, physical_blocks=8,
                                   pages_per_block=32))
    assert ftl.telem is None
    ftl.replay(np.zeros(64, dtype=np.int64), epoch_writes=16)
    assert len(ftl.epoch_series) == 4  # the series itself still accrues
