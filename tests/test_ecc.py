"""Unit tests for the error-correction substrates (ECP, PAYG, NoECC)."""

import pytest

from repro.ecc import ECP, NoECC, PAYG
from repro.ecc.ecp import ENTRY_BITS, GROUP_STATUS_BITS
from repro.ecc.payg import LOCAL_BITS
from repro.errors import ConfigurationError
from repro.pcm import EnduranceModel


@pytest.fixture
def endurance() -> EnduranceModel:
    return EnduranceModel(num_blocks=64, mean=1000, cov=0.2,
                          max_order=12, seed=9)


class TestECP:
    def test_threshold_is_capacity_plus_one_order(self, endurance):
        ecp = ECP(endurance, 6)
        assert (ecp.thresholds == endurance.nth_failure(7)).all()

    def test_never_extends(self, endurance):
        ecp = ECP(endurance, 6)
        assert not ecp.try_extend(0)

    def test_paper_metadata_cost(self, endurance):
        # ECP6: 61 bits per 512-bit group, the figure the paper quotes.
        assert ECP(endurance, 6).metadata_bits_per_group == 61

    def test_name(self, endurance):
        assert ECP(endurance, 6).name == "ECP6"
        assert ECP(endurance, 1).name == "ECP1"

    def test_entry_cost_constants(self):
        assert ENTRY_BITS == 10
        assert GROUP_STATUS_BITS == 1

    def test_rejects_capacity_beyond_orders(self, endurance):
        with pytest.raises(ConfigurationError):
            ECP(endurance, endurance.max_order)

    def test_rejects_negative_capacity(self, endurance):
        with pytest.raises(ConfigurationError):
            ECP(endurance, -1)

    def test_stronger_capacity_dominates(self, endurance):
        weak = ECP(endurance, 1)
        strong = ECP(endurance, 6)
        assert (strong.thresholds >= weak.thresholds).all()


class TestPAYG:
    def test_starts_at_local_capacity(self, endurance):
        payg = PAYG(endurance)
        assert (payg.thresholds == endurance.nth_failure(2)).all()
        assert payg.capacity_of(0) == 1

    def test_pool_sized_by_budget(self, endurance):
        payg = PAYG(endurance, avg_bits_per_group=19.5)
        expected_bits = (19.5 - LOCAL_BITS) * endurance.num_blocks
        assert payg.pool_entries == int(expected_bits // 21)

    def test_extend_consumes_pool_and_raises_threshold(self, endurance):
        payg = PAYG(endurance)
        before_pool = payg.pool_entries
        before_threshold = payg.threshold(0)
        assert payg.try_extend(0)
        assert payg.pool_entries == before_pool - 1
        assert payg.threshold(0) >= before_threshold
        assert payg.capacity_of(0) == 2

    def test_extend_fails_when_pool_empty(self, endurance):
        payg = PAYG(endurance)
        payg.pool_entries = 0
        assert not payg.try_extend(0)

    def test_extend_fails_past_materialized_orders(self, endurance):
        payg = PAYG(endurance, avg_bits_per_group=500.0)
        block = 0
        extensions = 0
        while payg.try_extend(block):
            extensions += 1
        # Local capacity 1 + extensions must stop before max_order - 1.
        assert 1 + extensions == endurance.max_order - 1

    def test_pool_used_fraction(self, endurance):
        payg = PAYG(endurance)
        assert payg.pool_used_fraction == 0.0
        payg.try_extend(0)
        assert 0.0 < payg.pool_used_fraction <= 1.0

    def test_rejects_budget_below_local_cost(self, endurance):
        with pytest.raises(ConfigurationError):
            PAYG(endurance, avg_bits_per_group=5.0)

    def test_metadata_budget_is_reported(self, endurance):
        assert PAYG(endurance).metadata_bits_per_group == 19.5


class TestNoECC:
    def test_threshold_is_first_death(self, endurance):
        none = NoECC(endurance)
        assert (none.thresholds == endurance.nth_failure(1)).all()

    def test_never_extends(self, endurance):
        assert not NoECC(endurance).try_extend(0)

    def test_zero_metadata(self, endurance):
        assert NoECC(endurance).metadata_bits_per_group == 0.0

    def test_describe_mentions_name(self, endurance):
        assert "NoECC" in NoECC(endurance).describe()
