"""Hypothesis property tests over the raw reviver protocol.

The controller-level tests exercise the protocol through real traffic;
these drive :class:`WLReviver` directly with *adversarial* interleavings of
failure events and mapping changes over a toy world, checking the paper's
theorems after every event.  Hypothesis shrinks any violating sequence to a
minimal counterexample, which makes this the sharpest debugging tool in
the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ReviverConfig
from repro.errors import CapacityExhaustedError
from repro.osmodel import FaultReporter, PagePool
from repro.reviver import FaultContext, InvariantChecker, WLReviver

BLOCKS = 64
BPP = 8


class ProtocolWorld:
    """A permutation world the reviver operates against."""

    def __init__(self) -> None:
        # mapping[pa] = da over BLOCKS-1 PAs; DA BLOCKS-1 starts unmapped
        # (a gap-like line) to exercise inverse(None) paths.
        self.mapping = list(range(BLOCKS - 1)) + [None]
        self.failed = set()
        self.pool = PagePool(BLOCKS - 1 - ((BLOCKS - 1) % BPP),
                             blocks_per_page=BPP, seed=1)
        self.reporter = FaultReporter(self.pool)
        self.reviver = WLReviver(
            ReviverConfig(), self.reporter,
            map_fn=self.map_fn, inverse_fn=self.inverse_fn,
            is_failed=lambda da: da in self.failed,
            blocks_per_page=BPP, block_bytes=64,
            num_pages=self.pool.num_pages)

    def map_fn(self, pa: int) -> int:
        return self.mapping[pa]

    def inverse_fn(self, da: int):
        for pa in range(len(self.mapping) - 1):
            if self.mapping[pa] == da:
                return pa
        return None

    # ------------------------------------------------------------- operations

    def rotate_mapping(self, pa_a: int, pa_b: int) -> None:
        """A wear-leveling event: swap two PAs' device blocks."""
        if pa_a == pa_b:
            return
        self.mapping[pa_a], self.mapping[pa_b] = \
            self.mapping[pa_b], self.mapping[pa_a]
        self.reviver.on_mapping_changed([pa_a, pa_b])

    def fail_block(self, da: int) -> bool:
        """A wear-out event at *da* (skipped if already failed)."""
        if da in self.failed or da >= BLOCKS - 1:
            return False
        self.failed.add(da)
        pa = self.inverse_fn(da)
        software = (pa is not None
                    and self.pool.pa_in_software_space(pa)
                    and self.pool.is_usable(self.pool.page_of_pa(pa)))
        if software:
            return self.reviver.handle_new_failure(
                da, FaultContext.SOFTWARE, victim_pa=pa, at_write=0)
        handled = self.reviver.handle_new_failure(
            da, FaultContext.MIGRATION, at_write=0)
        if not handled:
            # Victimize some usable software PA, as the controller would.
            for page in self.pool.pages:
                if page.is_usable:
                    victim = page.page_id * BPP
                    self.reviver.acquire_page(victim, 0, victimized=True)
                    return True
        return handled

    def check(self) -> None:
        if self.reviver.acquisition_pending:
            return
        software_pas = [page.page_id * BPP + off
                        for page in self.pool.pages if page.is_usable
                        for off in range(BPP)]
        checker = InvariantChecker(
            self.reviver.links, self.reviver.spares,
            self.map_fn, lambda da: da in self.failed,
            lambda: software_pas, lambda: sorted(self.failed))
        checker.check_all()


@given(events=st.lists(
    st.one_of(
        st.tuples(st.just("fail"),
                  st.integers(min_value=0, max_value=BLOCKS - 2)),
        st.tuples(st.just("rotate"),
                  st.tuples(st.integers(min_value=0, max_value=BLOCKS - 2),
                            st.integers(min_value=0, max_value=BLOCKS - 2)))),
    min_size=1, max_size=60))
@settings(max_examples=120, deadline=None)
def test_theorems_hold_under_adversarial_event_orders(events):
    """Property: any interleaving of failures and remappings preserves
    Theorems 1-3 and link consistency (until genuine space exhaustion)."""
    world = ProtocolWorld()
    try:
        for kind, payload in events:
            if kind == "fail":
                world.fail_block(payload)
            else:
                world.rotate_mapping(*payload)
            world.check()
    except CapacityExhaustedError:
        pass  # the chip genuinely ran out of pages: a legal terminal state


@given(events=st.lists(
    st.one_of(
        st.tuples(st.just("fail"),
                  st.integers(min_value=0, max_value=BLOCKS - 2)),
        st.tuples(st.just("rotate"),
                  st.tuples(st.integers(min_value=0, max_value=BLOCKS - 2),
                            st.integers(min_value=0, max_value=BLOCKS - 2)))),
    min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_telemetry_reconciles_with_protocol_ground_truth(events):
    """Property: under any event interleaving, the emitted telemetry
    reconciles exactly with the reviver's own counters — pointer-switch
    events match the resolver's switch count, link-install events match
    the link table, page-retire events match OS reports, and the
    suspend/resume balance equals the outstanding suspension flag."""
    from repro.telemetry import TelemetrySession, TraceWriter, attach_reviver
    from repro.telemetry.trace import read_trace

    world = ProtocolWorld()
    session = TelemetrySession(writer=TraceWriter(meta={"world": "toy"}))
    attach_reviver(session, world.reviver)
    try:
        for kind, payload in events:
            if kind == "fail":
                world.fail_block(payload)
            else:
                world.rotate_mapping(*payload)
    except CapacityExhaustedError:
        pass  # legal terminal state; everything emitted so far must agree
    reviver = world.reviver
    assert session.event_count("pointer-switch") == reviver.resolver.switches
    assert session.event_count("link-install") == len(reviver.links)
    assert session.event_count("page-retire") == world.reporter.report_count
    suspends = session.event_count("migration-suspend")
    resumes = session.event_count("migration-resume")
    assert suspends - resumes == (1 if reviver.acquisition_pending else 0)
    # The trace validates (known kinds, contiguous seq) and its census
    # agrees with the registry's event counters.
    records = read_trace(session.writer.getvalue().splitlines())
    assert len(records) == session.writer.seq
    for kind, count in session.writer.counts.items():
        if kind != "run-meta":
            assert session.event_count(kind) == count


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_spare_accounting_balances(seed):
    """Property: acquired slots == consumed + available, always."""
    import random
    rng = random.Random(seed)
    world = ProtocolWorld()
    try:
        for _ in range(40):
            if rng.random() < 0.5:
                world.fail_block(rng.randrange(BLOCKS - 1))
            else:
                world.rotate_mapping(rng.randrange(BLOCKS - 1),
                                     rng.randrange(BLOCKS - 1))
            spares = world.reviver.spares
            assert spares.total_acquired == \
                spares.total_consumed + spares.available
            assert len(world.reviver.links) <= spares.total_consumed
    except CapacityExhaustedError:
        pass
