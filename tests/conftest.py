"""Shared fixtures and builders for the test suite.

Tests assemble systems from small, fast-failing hardware so full lifecycle
scenarios (first failure, spare exhaustion, victimized writes, chains,
loops) all occur within a few thousand writes.
"""

from __future__ import annotations

import random

import pytest

from repro.config import CacheConfig, ReviverConfig
from repro.ecc import ECP
from repro.mc import RemapCache, ReviverController
from repro.osmodel import PagePool
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.wl import StartGap


def make_chip(num_blocks: int = 128, mean: float = 400.0, cov: float = 0.25,
              capacity: int = 1, seed: int = 11, track: bool = True,
              block_bytes: int = 64, page_bytes: int = 512) -> PCMChip:
    """A small chip with weak endurance and the given ECP capacity."""
    geometry = AddressGeometry(num_blocks=num_blocks,
                               block_bytes=block_bytes,
                               page_bytes=page_bytes)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=cov,
                               max_order=max(8, capacity + 2), seed=seed)
    return PCMChip(geometry, ECP(endurance, capacity), track_contents=track)


def make_reviver_system(num_blocks: int = 128, mean: float = 400.0,
                        utilization: float = 0.8, cache: bool = False,
                        check_invariants: bool = True,
                        seed: int = 11, **controller_kwargs):
    """Chip + Start-Gap + OS pool + ReviverController, test-sized.

    Returns ``(controller, chip, wear_leveler, ospool)``.
    """
    chip = make_chip(num_blocks=num_blocks, mean=mean, seed=seed)
    wear_leveler = StartGap(num_blocks)
    ospool = PagePool(wear_leveler.logical_blocks, blocks_per_page=8,
                      utilization=utilization, seed=5)
    remap_cache = None
    if cache:
        remap_cache = RemapCache(CacheConfig(capacity_entries=16,
                                             associativity=4))
    controller = ReviverController(
        chip, wear_leveler, ospool,
        reviver_config=ReviverConfig(check_invariants=check_invariants),
        cache=remap_cache, copy_on_retire=True, **controller_kwargs)
    return controller, chip, wear_leveler, ospool


def drive_random_writes(controller, steps: int, seed: int = 7,
                        tag_base: int = 1_000_000) -> dict:
    """Issue random tagged writes; returns the expected tag per vblock."""
    from repro.errors import CapacityExhaustedError

    rng = random.Random(seed)
    expected = {}
    space = controller.ospool.virtual_blocks
    for step in range(steps):
        vblock = rng.randrange(space)
        tag = tag_base + step
        try:
            controller.service_write(vblock, tag=tag)
        except CapacityExhaustedError:
            break  # genuine end of chip life; tests assert on what happened
        expected[vblock] = tag
    return expected


def assert_data_consistent(controller, expected: dict) -> None:
    """Every non-lost virtual block reads back its last written tag."""
    for vblock, tag in expected.items():
        if vblock in controller.lost_vblocks:
            continue
        result = controller.service_read(vblock)
        assert result.tag == tag, (
            f"vblock {vblock}: read {result.tag}, expected {tag}")


@pytest.fixture
def small_chip() -> PCMChip:
    """A 128-block chip with ECP1 and tracked contents."""
    return make_chip()


@pytest.fixture
def reviver_system():
    """A complete reviver-controlled system with invariant checking on."""
    return make_reviver_system()
