"""Tests for the wear-distribution statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.wearstats import (
    WearReport,
    endurance_utilization,
    gini,
    wear_cov,
    wear_histogram,
)

from .conftest import make_chip


class TestGini:
    def test_perfectly_even_is_zero(self):
        assert gini(np.full(100, 7)) == pytest.approx(0.0, abs=1e-12)

    def test_single_hoarder_approaches_one(self):
        wear = np.zeros(1000)
        wear[0] = 5000
        assert gini(wear) > 0.99

    def test_known_value(self):
        # Two blocks, one with everything: G = 1/2 for n=2.
        assert gini(np.array([0.0, 10.0])) == pytest.approx(0.5)

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    @given(values=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, values):
        g = gini(np.array(values))
        assert -1e-9 <= g <= 1.0

    @given(values=st.lists(st.integers(min_value=1, max_value=1000),
                           min_size=2, max_size=50),
           scale=st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance(self, values, scale):
        wear = np.array(values, dtype=np.float64)
        assert gini(wear) == pytest.approx(gini(wear * scale), abs=1e-9)


class TestCovAndHistogram:
    def test_cov_zero_for_even(self):
        assert wear_cov(np.full(10, 3)) == 0.0

    def test_cov_empty(self):
        assert wear_cov(np.array([])) == 0.0

    def test_histogram_covers_all_blocks(self):
        wear = np.arange(100)
        hist = wear_histogram(wear, bins=10)
        assert sum(count for _, count in hist) == 100
        assert len(hist) == 10

    def test_histogram_empty(self):
        assert wear_histogram(np.array([])) == []


class TestUtilization:
    def test_fresh_chip_is_zero(self, small_chip):
        assert endurance_utilization(small_chip) == 0.0

    def test_grows_with_writes(self, small_chip):
        for da in range(small_chip.num_blocks):
            small_chip.write(da)
        used = endurance_utilization(small_chip)
        assert 0.0 < used < 1.0

    def test_clips_overshoot(self):
        chip = make_chip(num_blocks=64, mean=50, seed=2)
        chip.wear[:] = 10 ** 9  # way beyond any threshold
        assert endurance_utilization(chip) == pytest.approx(1.0)


class TestWearReport:
    def test_snapshot(self, small_chip):
        small_chip.write(0)
        report = WearReport.of(small_chip)
        assert report.max_wear == 1
        assert report.failed_fraction == 0.0
        assert 0.0 <= report.gini <= 1.0

    def test_leveled_system_beats_frozen_on_gini(self):
        """A revived Start-Gap ends its life with more even wear than an
        identity-mapped chip under the same skewed traffic."""
        from repro.config import StartGapConfig
        from repro.ecc import ECP
        from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
        from repro.sim import FastConfig, FastEngine
        from repro.traces import hotspot_distribution
        from repro.wl import NoWL, StartGap

        def run(wl_factory):
            geometry = AddressGeometry(num_blocks=512)
            endurance = EnduranceModel(num_blocks=512, mean=300, cov=0.2,
                                       max_order=10, seed=3)
            chip = PCMChip(geometry, ECP(endurance, 1))
            engine = FastEngine(chip, wl_factory(),
                                hotspot_distribution(512, 6.0, seed=9),
                                FastConfig(recovery="reviver",
                                           batch_writes=2000, seed=1))
            engine.run()
            return WearReport.of(chip)

        leveled = run(lambda: StartGap(512, config=StartGapConfig(psi=4)))
        identity = run(lambda: NoWL(512))
        assert leveled.gini < identity.gini
