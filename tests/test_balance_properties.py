"""Property suite for the balance control plane.

The pinned contracts, each driven by hypothesis over geometries,
interleave modes, and mutation histories:

* **monotone remap** — growing the array moves exactly the addresses
  the consistent hash selects; every other address keeps its exact
  ``(shard, slot)`` home, so growth never reshuffles settled data;
* **table round trip** — a decoder's sparse :class:`RemapTable`
  survives JSON serialization, and a decoder rebuilt from the restored
  table decodes every address identically, after arbitrary histories
  of swaps and growth;
* **transparent wrap** — before any mutation, a ``BalancedDecoder``
  is an exact identity over its base ``InterleavedDecoder``;
* **swap conservation** — any sequence of swaps is a permutation:
  the multiset of ``(shard, slot)`` homes is preserved.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import InterleavedDecoder
from repro.balance import BalancedDecoder, RemapTable, movers_mask

INTERLEAVES = ("block", "page")

shards = st.integers(min_value=1, max_value=6)
pages = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def build(num_shards, interleave, page_blocks, shard_pages=4):
    shard_blocks = page_blocks * shard_pages
    base = InterleavedDecoder(num_shards, num_shards * shard_blocks,
                              interleave=interleave,
                              page_blocks=page_blocks)
    return BalancedDecoder(base)


def homes(decoder):
    addresses = np.arange(decoder.global_blocks, dtype=np.int64)
    return decoder.shard_of(addresses), decoder.local_of(addresses)


@given(num_shards=shards, interleave=st.sampled_from(INTERLEAVES),
       page_blocks=pages)
@settings(max_examples=60, deadline=None)
def test_unmutated_wrap_is_an_identity(num_shards, interleave,
                                       page_blocks):
    decoder = build(num_shards, interleave, page_blocks)
    addresses = np.arange(decoder.global_blocks, dtype=np.int64)
    assert np.array_equal(decoder.shard_of(addresses),
                          decoder.base.shard_of(addresses))
    assert np.array_equal(decoder.local_of(addresses),
                          decoder.base.local_of(addresses))


@given(num_shards=shards, interleave=st.sampled_from(INTERLEAVES),
       page_blocks=pages, growths=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_growth_is_monotone(num_shards, interleave, page_blocks,
                            growths):
    decoder = build(num_shards, interleave, page_blocks)
    addresses = np.arange(decoder.global_blocks, dtype=np.int64)
    for _ in range(growths):
        before_shard, before_slot = homes(decoder)
        old_shards = decoder.num_shards
        movers, donors = decoder.add_shard()
        after_shard, after_slot = homes(decoder)
        # The movers are exactly the consistent-hash selection,
        # truncated (in ascending address order) to the new shard's
        # slot capacity.
        expected = addresses[movers_mask(addresses, old_shards,
                                         old_shards + 1)]
        expected = expected[:decoder.shard_blocks]
        assert np.array_equal(movers, expected)
        assert np.array_equal(before_shard[movers], donors)
        # Everyone else keeps the exact (shard, slot) home.
        stay = np.ones(decoder.global_blocks, dtype=bool)
        stay[movers] = False
        assert np.array_equal(before_shard[stay], after_shard[stay])
        assert np.array_equal(before_slot[stay], after_slot[stay])
        assert np.all(after_shard[movers] == old_shards)


@given(num_shards=shards, interleave=st.sampled_from(INTERLEAVES),
       page_blocks=pages, seed=seeds,
       swap_count=st.integers(min_value=0, max_value=12),
       grow=st.booleans())
@settings(max_examples=60, deadline=None)
def test_table_round_trips_after_any_history(num_shards, interleave,
                                             page_blocks, seed,
                                             swap_count, grow):
    decoder = build(num_shards, interleave, page_blocks)
    rng = np.random.default_rng(seed)
    for _ in range(swap_count):
        a, b = rng.integers(0, decoder.global_blocks, size=2)
        decoder.swap(int(a), int(b))
    if grow:
        decoder.add_shard()
    table = decoder.table()
    restored_table = RemapTable.from_json(table.to_json())
    assert restored_table == table
    restored = BalancedDecoder.from_table(restored_table)
    assert np.array_equal(np.asarray(homes(decoder)),
                          np.asarray(homes(restored)))
    assert restored.num_shards == decoder.num_shards


@given(num_shards=shards, interleave=st.sampled_from(INTERLEAVES),
       page_blocks=pages, seed=seeds,
       swap_count=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_swaps_permute_the_home_set(num_shards, interleave, page_blocks,
                                    seed, swap_count):
    decoder = build(num_shards, interleave, page_blocks)
    before_shard, before_slot = homes(decoder)
    before = sorted(zip(before_shard.tolist(), before_slot.tolist()))
    rng = np.random.default_rng(seed)
    for _ in range(swap_count):
        a, b = rng.integers(0, decoder.global_blocks, size=2)
        decoder.swap(int(a), int(b))
    after_shard, after_slot = homes(decoder)
    assert sorted(zip(after_shard.tolist(), after_slot.tolist())) == before
