"""Integration tests for the baseline and FREE-p controllers."""

import random

import pytest

from repro.config import CacheConfig
from repro.ecc import FreePRegion
from repro.errors import CapacityExhaustedError
from repro.mc import BaselineController, FreePController, RemapCache
from repro.osmodel import PagePool
from repro.wl import StartGap

from .conftest import make_chip


def make_baseline(num_blocks: int = 128, mean: float = 300.0, seed: int = 11):
    chip = make_chip(num_blocks=num_blocks, mean=mean, seed=seed)
    wear_leveler = StartGap(num_blocks)
    ospool = PagePool(wear_leveler.logical_blocks, blocks_per_page=8,
                      utilization=0.8, seed=5)
    return BaselineController(chip, wear_leveler, ospool), chip, wear_leveler


def make_freep(num_blocks: int = 128, mean: float = 300.0,
               reserve: float = 0.10, seed: int = 11, cache: bool = False):
    chip = make_chip(num_blocks=num_blocks, mean=mean, seed=seed)
    region = FreePRegion(num_blocks, reserve)
    wear_leveler = StartGap(region.working_blocks)
    ospool = PagePool(wear_leveler.logical_blocks, blocks_per_page=8,
                      utilization=0.8, seed=5)
    remap = RemapCache(CacheConfig(capacity_entries=16, associativity=4)) \
        if cache else None
    controller = FreePController(chip, wear_leveler, ospool, region,
                                 cache=remap)
    return controller, chip, wear_leveler, region


def drive(controller, steps: int, seed: int = 7):
    rng = random.Random(seed)
    space = controller.ospool.virtual_blocks
    for step in range(steps):
        try:
            controller.service_write(rng.randrange(space), tag=step)
        except CapacityExhaustedError:
            return step
    return steps


class TestBaselineController:
    def test_round_trip_before_failures(self):
        controller, *_ = make_baseline(mean=10_000)
        controller.service_write(3, tag=7)
        assert controller.service_read(3).tag == 7

    def test_first_failure_freezes_scheme(self):
        controller, chip, wear_leveler = make_baseline()
        drive(controller, 20_000)
        assert chip.failed_count > 0
        assert wear_leveler.frozen

    def test_failures_retire_pages(self):
        controller, chip, _ = make_baseline()
        drive(controller, 20_000)
        assert controller.ospool.retired_pages >= 1
        assert controller.reporter.report_count >= 1

    def test_usable_space_collapses_fast(self):
        """Every exposed failure costs a whole page: the 64x amplification."""
        controller, chip, _ = make_baseline()
        drive(controller, 20_000)
        lost_pages = controller.ospool.retired_pages
        assert lost_pages >= chip.failed_count * 0.5 or lost_pages >= 3

    def test_migration_fault_drops_data(self):
        controller, chip, _ = make_baseline(mean=150)
        drive(controller, 20_000)
        # Migration drops are recorded as lost, never silently swallowed.
        assert isinstance(controller.lost_vblocks, set)


class TestFreePController:
    def test_links_failures_to_slots(self):
        controller, chip, _, region = make_freep()
        drive(controller, 20_000)
        assert chip.failed_count > 0
        assert len(region.links) > 0

    def test_wl_survives_while_slots_remain(self):
        controller, chip, wear_leveler, region = make_freep(reserve=0.3)
        drive(controller, 10_000)
        if not region.exhausted:
            assert not wear_leveler.frozen

    def test_redirected_access_costs_two(self):
        controller, chip, wear_leveler, region = make_freep()
        drive(controller, 20_000)
        linked = list(region.links)
        target = None
        for vblock in range(controller.ospool.virtual_blocks):
            pa = controller.ospool.translate(vblock)
            if wear_leveler.map(pa) in linked:
                target = vblock
                break
        if target is None:
            pytest.skip("no software PA currently maps to a linked block")
        result = controller.service_read(target)
        assert result.redirected
        assert result.pcm_accesses == 2

    def test_exhaustion_freezes_scheme(self):
        controller, chip, wear_leveler, region = make_freep(
            reserve=0.02, mean=200)
        drive(controller, 40_000)
        if region.exhausted and chip.failed_count > region.slots_total:
            assert wear_leveler.frozen

    def test_working_space_mismatch_rejected(self):
        from repro.errors import ProtocolError
        chip = make_chip(num_blocks=128)
        region = FreePRegion(128, 0.10)
        wear_leveler = StartGap(128)  # covers the slots: invalid
        ospool = PagePool(wear_leveler.logical_blocks, blocks_per_page=8)
        with pytest.raises(ProtocolError):
            FreePController(chip, wear_leveler, ospool, region)

    def test_data_consistent_through_slot_redirection(self):
        controller, chip, _, region = make_freep(mean=400, cache=True)
        rng = random.Random(3)
        expected = {}
        space = controller.ospool.virtual_blocks
        for step in range(15_000):
            vblock = rng.randrange(space)
            try:
                controller.service_write(vblock, tag=step)
            except CapacityExhaustedError:
                break
            expected[vblock] = step
        if region.exhausted:
            pytest.skip("region exhausted; baseline data loss is expected")
        for vblock, tag in expected.items():
            if vblock in controller.lost_vblocks:
                continue
            assert controller.service_read(vblock).tag == tag
