"""Unit and integration tests for RegionedStartGap."""

import random

import numpy as np
import pytest

from repro.config import ReviverConfig, StartGapConfig
from repro.errors import CapacityExhaustedError, ConfigurationError
from repro.mc import ReviverController
from repro.osmodel import PagePool
from repro.wl import NullPort, RegionedStartGap

from .conftest import assert_data_consistent, make_chip


def make_regioned(device: int = 64, regions: int = 4, psi: int = 5):
    return RegionedStartGap(device, num_regions=regions,
                            config=StartGapConfig(psi=psi))


class TestMapping:
    def test_logical_capacity(self):
        scheme = make_regioned(64, 4)
        # Each region sacrifices one gap line.
        assert scheme.logical_blocks == 4 * 15

    def test_bijection_initial_and_after_ticks(self):
        scheme = make_regioned()
        scheme.check_bijection()
        port = NullPort()
        for step in range(500):
            scheme.tick(port, pa=step % scheme.logical_blocks)
        scheme.check_bijection()

    def test_mapping_stays_within_region(self):
        scheme = make_regioned(64, 4)
        port = NullPort()
        for step in range(300):
            scheme.tick(port, pa=step % scheme.logical_blocks)
        for pa in range(scheme.logical_blocks):
            region = scheme.region_of_pa(pa)
            da = scheme.map(pa)
            assert da // scheme.region_device == region

    def test_map_many_matches_scalar(self):
        scheme = make_regioned()
        port = NullPort()
        for step in range(177):
            scheme.tick(port, pa=step % scheme.logical_blocks)
        pas = np.arange(scheme.logical_blocks)
        assert (scheme.map_many(pas)
                == np.array([scheme.map(int(p)) for p in pas])).all()

    def test_gap_lines_unmapped(self):
        scheme = make_regioned(64, 4)
        for region in range(4):
            gap_da = region * 16 + scheme.regions[region].gap
            assert scheme.inverse(gap_da) is None

    def test_rejects_bad_partition(self):
        with pytest.raises(ConfigurationError):
            RegionedStartGap(65, 4)
        with pytest.raises(ConfigurationError):
            RegionedStartGap(64, 0)


class TestPerRegionSchedule:
    def test_writes_charged_to_their_region(self):
        scheme = make_regioned(64, 4, psi=5)
        port = NullPort()
        hot_pa = 0  # region 0
        for _ in range(50):
            scheme.tick(port, pa=hot_pa)
        assert scheme.regions[0].gap_moves == 10
        assert all(scheme.regions[r].gap_moves == 0 for r in (1, 2, 3))

    def test_round_robin_without_pa(self):
        scheme = make_regioned(64, 4, psi=5)
        port = NullPort()
        for _ in range(100):
            scheme.tick(port)
        moves = [r.gap_moves for r in scheme.regions]
        assert sum(moves) == 20
        assert max(moves) - min(moves) <= 1

    def test_changed_pas_are_global(self):
        scheme = make_regioned(64, 4, psi=1)
        port = NullPort()
        hot_pa = scheme.logical_blocks - 1  # last region
        changed = scheme.tick(port, pa=hot_pa)
        assert changed
        assert all(scheme.region_of_pa(pa) == 3 for pa in changed)

    def test_freeze_freezes_all_regions(self):
        scheme = make_regioned()
        scheme.freeze()
        assert all(region.frozen for region in scheme.regions)
        assert scheme.tick(NullPort(), pa=0) == []

    def test_bulk_migrations_rows_in_region_bounds(self):
        scheme = make_regioned(64, 4, psi=5)
        port = NullPort()
        for _ in range(40):
            scheme.tick(port, pa=0)
        rows = scheme.bulk_migrations(4)
        for src, dst in rows:
            assert src // 16 == dst // 16  # moves never cross regions


class TestWithReviver:
    def test_full_stack_data_consistency(self):
        """The framework claim again: a composite scheme needs no changes."""
        chip = make_chip(num_blocks=128, mean=400, seed=11)
        scheme = RegionedStartGap(128, num_regions=4,
                                  config=StartGapConfig(psi=20))
        ospool = PagePool(scheme.logical_blocks, blocks_per_page=8,
                          utilization=0.8, seed=5)
        controller = ReviverController(
            chip, scheme, ospool,
            reviver_config=ReviverConfig(check_invariants=True),
            copy_on_retire=True)
        rng = random.Random(7)
        expected = {}
        space = ospool.virtual_blocks
        try:
            step = 0
            while chip.failed_fraction() < 0.3 and step < 30_000:
                vblock = rng.randrange(space)
                controller.service_write(vblock, tag=step)
                expected[vblock] = step
                step += 1
        except CapacityExhaustedError:
            pass
        assert chip.failed_fraction() > 0.05
        assert_data_consistent(controller, expected)
