"""Tests for the static address randomizers, incl. hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, ConfigurationError
from repro.wl import (
    FeistelRandomizer,
    IdentityRandomizer,
    PermutationRandomizer,
    RestrictedRandomizer,
    make_randomizer,
)

ALL_KINDS = ["feistel", "permutation", "identity", "restricted"]


def build(kind: str, size: int, seed: int = 3):
    return make_randomizer(kind, size, seed=seed)


class TestBijectivity:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("size", [2, 7, 64, 255, 256, 1000])
    def test_forward_is_permutation(self, kind, size):
        randomizer = build(kind, size)
        image = {randomizer.forward(x) for x in range(size)}
        assert image == set(range(size))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("size", [2, 7, 64, 255, 1000])
    def test_backward_inverts_forward(self, kind, size):
        randomizer = build(kind, size)
        for x in range(size):
            assert randomizer.backward(randomizer.forward(x)) == x

    @given(size=st.integers(min_value=2, max_value=600),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_feistel_bijection_property(self, size, seed):
        """Property: any (size, seed) yields an exact bijection."""
        randomizer = FeistelRandomizer(size, seed=seed)
        image = sorted(randomizer.forward(x) for x in range(size))
        assert image == list(range(size))


class TestVectorization:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_forward_many_matches_scalar(self, kind):
        randomizer = build(kind, 257)
        xs = np.arange(257)
        vectorized = randomizer.forward_many(xs)
        scalar = [randomizer.forward(int(x)) for x in xs]
        assert vectorized.tolist() == scalar

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_backward_many_matches_scalar(self, kind):
        randomizer = build(kind, 257)
        xs = np.arange(257)
        vectorized = randomizer.backward_many(xs)
        scalar = [randomizer.backward(int(x)) for x in xs]
        assert vectorized.tolist() == scalar


class TestSeeding:
    @pytest.mark.parametrize("kind", ["feistel", "permutation", "restricted"])
    def test_seed_determines_permutation(self, kind):
        a = build(kind, 128, seed=1)
        b = build(kind, 128, seed=1)
        c = build(kind, 128, seed=2)
        mapping_a = [a.forward(x) for x in range(128)]
        mapping_b = [b.forward(x) for x in range(128)]
        mapping_c = [c.forward(x) for x in range(128)]
        assert mapping_a == mapping_b
        assert mapping_a != mapping_c


class TestRestricted:
    def test_halves_swap(self):
        randomizer = RestrictedRandomizer(64, seed=4)
        for x in range(32):
            assert randomizer.forward(x) >= 32
        for x in range(32, 64):
            assert randomizer.forward(x) < 32

    def test_odd_size_fixes_last(self):
        randomizer = RestrictedRandomizer(65, seed=4)
        assert randomizer.forward(64) == 64
        assert randomizer.backward(64) == 64

    def test_restriction_limits_spread(self):
        """A hot lower-half region lands entirely in the upper half —
        the leveling handicap the paper attributes to LLS."""
        randomizer = RestrictedRandomizer(256, seed=4)
        targets = {randomizer.forward(x) for x in range(64)}
        assert all(t >= 128 for t in targets)


class TestMisc:
    def test_identity_is_identity(self):
        randomizer = IdentityRandomizer(100)
        assert all(randomizer.forward(x) == x for x in range(100))

    def test_out_of_range_rejected(self):
        randomizer = PermutationRandomizer(10, seed=1)
        with pytest.raises(AddressError):
            randomizer.forward(10)
        with pytest.raises(AddressError):
            randomizer.backward(-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_randomizer("bogus", 16)

    def test_feistel_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            FeistelRandomizer(16, rounds=0)

    def test_feistel_actually_scrambles(self):
        randomizer = FeistelRandomizer(4096, seed=5)
        fixed = sum(1 for x in range(4096) if randomizer.forward(x) == x)
        assert fixed < 40  # a random permutation averages 1 fixed point
